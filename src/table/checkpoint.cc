#include "table/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace frugal {

namespace {

constexpr std::uint64_t kMagic = 0x4652554741'4c5442ULL;  // "FRUGAL TB"
constexpr std::uint32_t kVersion = 1;

struct Header
{
    std::uint64_t magic = kMagic;
    std::uint32_t version = kVersion;
    std::uint32_t dim = 0;
    std::uint64_t key_space = 0;
    std::uint64_t init_seed = 0;
};

/** FNV-1a over the row bytes, mixed per 64-bit word. */
std::uint64_t
ChecksumRows(const HostEmbeddingTable &table)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    std::vector<float> row(table.dim());
    for (Key k = 0; k < table.key_space(); ++k) {
        table.ReadRow(k, row.data());
        for (float v : row) {
            std::uint32_t bits;
            static_assert(sizeof(bits) == sizeof(v));
            __builtin_memcpy(&bits, &v, sizeof(bits));
            hash ^= bits;
            hash *= 0x100000001b3ULL;
        }
    }
    return hash;
}

}  // namespace

void
SaveCheckpoint(const HostEmbeddingTable &table, const std::string &path)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out.good())
            FRUGAL_FATAL("cannot open checkpoint file " << tmp);
        Header header;
        header.dim = static_cast<std::uint32_t>(table.dim());
        header.key_space = table.key_space();
        out.write(reinterpret_cast<const char *>(&header),
                  sizeof(header));
        std::vector<float> row(table.dim());
        for (Key k = 0; k < table.key_space(); ++k) {
            table.ReadRow(k, row.data());
            out.write(reinterpret_cast<const char *>(row.data()),
                      static_cast<std::streamsize>(row.size() *
                                                   sizeof(float)));
        }
        const std::uint64_t checksum = ChecksumRows(table);
        out.write(reinterpret_cast<const char *>(&checksum),
                  sizeof(checksum));
        if (!out.good())
            FRUGAL_FATAL("short write to checkpoint file " << tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        FRUGAL_FATAL("cannot rename " << tmp << " to " << path);
}

bool
ProbeCheckpoint(const std::string &path, CheckpointInfo *info)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return false;
    Header header;
    in.read(reinterpret_cast<char *>(&header), sizeof(header));
    if (!in.good() || header.magic != kMagic ||
        header.version != kVersion) {
        return false;
    }
    if (info != nullptr) {
        info->key_space = header.key_space;
        info->dim = header.dim;
        info->init_seed = header.init_seed;
    }
    return true;
}

bool
LoadCheckpoint(HostEmbeddingTable &table, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return false;
    Header header;
    in.read(reinterpret_cast<char *>(&header), sizeof(header));
    if (!in.good() || header.magic != kMagic ||
        header.version != kVersion ||
        header.key_space != table.key_space() ||
        header.dim != table.dim()) {
        return false;
    }
    // Stage into a buffer so a corrupt file never half-overwrites the
    // live table.
    std::vector<float> staged(
        static_cast<std::size_t>(header.key_space) * header.dim);
    in.read(reinterpret_cast<char *>(staged.data()),
            static_cast<std::streamsize>(staged.size() * sizeof(float)));
    std::uint64_t stored_checksum = 0;
    in.read(reinterpret_cast<char *>(&stored_checksum),
            sizeof(stored_checksum));
    if (!in.good())
        return false;

    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (float v : staged) {
        std::uint32_t bits;
        __builtin_memcpy(&bits, &v, sizeof(bits));
        hash ^= bits;
        hash *= 0x100000001b3ULL;
    }
    if (hash != stored_checksum) {
        FRUGAL_WARN("checkpoint " << path << " failed checksum; ignored");
        return false;
    }
    for (Key k = 0; k < table.key_space(); ++k) {
        float *row = table.MutableRow(k);
        const float *src =
            staged.data() + static_cast<std::size_t>(k) * table.dim();
        for (std::size_t j = 0; j < table.dim(); ++j)
            row[j] = src[j];
    }
    return true;
}

}  // namespace frugal
