#include "table/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/logging.h"

namespace frugal {

namespace {

constexpr std::uint64_t kMagic = 0x4652554741'4c5442ULL;  // "FRUGAL TB"
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kOptNameBytes = 16;

struct Header
{
    std::uint64_t magic = kMagic;
    std::uint32_t version = kVersion;
    std::uint32_t dim = 0;
    std::uint64_t key_space = 0;
    std::uint64_t init_seed = 0;
    std::uint64_t next_step = 0;
    std::uint64_t opt_state_floats = 0;
    char opt_name[kOptNameBytes] = {};
};
static_assert(sizeof(Header) == 64, "checkpoint header layout drifted");

/** FNV-1a over 32-bit words. */
class Fnv1a
{
  public:
    void
    Mix32(std::uint32_t word)
    {
        hash_ ^= word;
        hash_ *= 0x100000001b3ULL;
    }

    void
    MixFloat(float v)
    {
        std::uint32_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        Mix32(bits);
    }

    void
    Mix64(std::uint64_t v)
    {
        Mix32(static_cast<std::uint32_t>(v));
        Mix32(static_cast<std::uint32_t>(v >> 32));
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/**
 * Checksum over everything that must be consistent: rows, optimizer
 * state, and the resume cursor. Covering the cursor matters — a bit
 * flip there would replay or skip steps while rows still verify.
 */
std::uint64_t
ComputeChecksum(const std::vector<float> &rows,
                const std::vector<float> &opt_state, Step next_step)
{
    Fnv1a fnv;
    for (float v : rows)
        fnv.MixFloat(v);
    for (float v : opt_state)
        fnv.MixFloat(v);
    fnv.Mix64(static_cast<std::uint64_t>(next_step));
    return fnv.value();
}

/** errno values meaning the destination can never work as given. */
bool
IsUserPathError(int err)
{
    return err == ENOENT || err == ENOTDIR || err == EACCES ||
           err == EROFS || err == EISDIR || err == ENAMETOOLONG;
}

/** Loops a full write; false on any failure. */
bool
WriteAll(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        const ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** fsyncs the directory containing `path` so the rename is durable. */
bool
FsyncParentDir(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

}  // namespace

bool
SaveCheckpoint(const HostEmbeddingTable &table,
               const CheckpointExtras &extras, const std::string &path,
               FaultInjector *injector)
{
    const std::string tmp = path + ".tmp";

    Header header;
    header.dim = static_cast<std::uint32_t>(table.dim());
    header.key_space = table.key_space();
    header.next_step = static_cast<std::uint64_t>(extras.next_step);
    header.opt_state_floats = extras.optimizer_state.size();
    std::strncpy(header.opt_name, extras.optimizer_name.c_str(),
                 kOptNameBytes - 1);

    std::vector<float> rows(static_cast<std::size_t>(table.key_space()) *
                            table.dim());
    for (Key k = 0; k < table.key_space(); ++k)
        table.ReadRow(k, rows.data() + static_cast<std::size_t>(k) *
                                           table.dim());
    const std::uint64_t checksum =
        ComputeChecksum(rows, extras.optimizer_state, extras.next_step);

    // O_RDWR (not O_WRONLY): the corruption injector reads a byte back
    // through the same descriptor before flipping it.
    const int fd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        const int err = errno;
        if (IsUserPathError(err)) {
            FRUGAL_FATAL("cannot open checkpoint file "
                         << tmp << ": " << std::strerror(err));
        }
        FRUGAL_WARN("transient failure opening checkpoint file "
                    << tmp << ": " << std::strerror(err));
        return false;
    }

    bool ok;
    if (auto torn = FaultPoint(injector, FaultSite::kCheckpointTornWrite)) {
        // Torn write in the temp-file stage, *before* fsync: the writer
        // dies mid-stream and only a prefix of the image reaches the
        // file. Unlike kCheckpointTruncate (which damages an image the
        // rename then commits), the tear is caught here — the save
        // reports a transient failure, the temp file is discarded
        // below, and the previous checkpoint stays in place. Payload:
        // row bytes to write before dying (0 = half).
        const std::size_t row_bytes = rows.size() * sizeof(float);
        const std::size_t keep =
            *torn == 0 ? row_bytes / 2
                       : std::min<std::size_t>(*torn, row_bytes);
        FRUGAL_WARN("fault injection: torn checkpoint write after "
                    << keep << " of " << row_bytes << " row bytes");
        ok = WriteAll(fd, &header, sizeof(header)) &&
             WriteAll(fd, rows.data(), keep) && false;
    } else {
        ok = WriteAll(fd, &header, sizeof(header)) &&
             WriteAll(fd, rows.data(), rows.size() * sizeof(float)) &&
             (extras.optimizer_state.empty() ||
              WriteAll(fd, extras.optimizer_state.data(),
                       extras.optimizer_state.size() * sizeof(float))) &&
             WriteAll(fd, &checksum, sizeof(checksum));
    }
    if (ok && ::fsync(fd) != 0)
        ok = false;

    if (ok) {
        // Injected torn / bit-rotted writes land *after* the fsync, so
        // the damaged bytes are exactly what a crash-then-rename would
        // have committed; Load must reject them.
        const std::size_t payload_bytes =
            rows.size() * sizeof(float) +
            extras.optimizer_state.size() * sizeof(float);
        if (auto p = FaultPoint(injector, FaultSite::kCheckpointTruncate)) {
            const off_t full = static_cast<off_t>(
                sizeof(Header) + payload_bytes + sizeof(checksum));
            const off_t keep =
                *p == 0 ? full / 2
                        : std::min<off_t>(static_cast<off_t>(*p), full);
            FRUGAL_WARN("fault injection: truncating checkpoint temp to "
                        << keep << " of " << full << " bytes");
            if (::ftruncate(fd, keep) != 0 || ::fsync(fd) != 0)
                ok = false;
        }
        if (ok && FaultPoint(injector, FaultSite::kCheckpointCorrupt)
                      .has_value()) {
            const off_t offset = static_cast<off_t>(
                sizeof(Header) + payload_bytes / 2);
            char byte = 0;
            if (::pread(fd, &byte, 1, offset) != 1)
                ok = false;
            byte = static_cast<char>(byte ^ 0x40);
            if (ok && (::pwrite(fd, &byte, 1, offset) != 1 ||
                       ::fsync(fd) != 0)) {
                ok = false;
            }
            FRUGAL_WARN("fault injection: flipped checkpoint byte at "
                        << offset);
        }
    }

    if (::close(fd) != 0)
        ok = false;
    if (!ok) {
        FRUGAL_WARN("transient write failure on checkpoint file " << tmp);
        ::unlink(tmp.c_str());
        return false;
    }

    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        if (IsUserPathError(err)) {
            FRUGAL_FATAL("cannot rename " << tmp << " to " << path << ": "
                                          << std::strerror(err));
        }
        FRUGAL_WARN("transient failure renaming " << tmp << " to " << path
                                                  << ": "
                                                  << std::strerror(err));
        return false;
    }
    if (!FsyncParentDir(path)) {
        // The file is in place but the rename may not be durable yet;
        // report failure so the caller re-checkpoints rather than
        // trusting an unsynced directory entry.
        FRUGAL_WARN("cannot fsync parent directory of " << path);
        return false;
    }
    return true;
}

bool
SaveCheckpoint(const HostEmbeddingTable &table, const std::string &path)
{
    return SaveCheckpoint(table, CheckpointExtras{}, path, nullptr);
}

bool
ProbeCheckpoint(const std::string &path, CheckpointInfo *info)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return false;
    Header header;
    in.read(reinterpret_cast<char *>(&header), sizeof(header));
    if (!in.good() || header.magic != kMagic)
        return false;
    if (info != nullptr) {
        info->version = header.version;
        info->key_space = header.key_space;
        info->dim = header.dim;
        info->init_seed = header.init_seed;
        info->next_step = static_cast<Step>(header.next_step);
        header.opt_name[kOptNameBytes - 1] = '\0';
        info->optimizer_name = header.opt_name;
        info->opt_state_floats = header.opt_state_floats;
    }
    return true;
}

bool
LoadCheckpoint(HostEmbeddingTable &table, const std::string &path,
               CheckpointExtras *extras)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return false;
    Header header;
    in.read(reinterpret_cast<char *>(&header), sizeof(header));
    if (!in.good() || header.magic != kMagic)
        return false;
    if (header.version != kVersion) {
        FRUGAL_WARN("checkpoint " << path << " has version "
                                  << header.version << ", expected "
                                  << kVersion << "; ignored");
        return false;
    }
    if (header.key_space != table.key_space() ||
        header.dim != table.dim()) {
        FRUGAL_WARN("checkpoint " << path << " shape mismatch ("
                                  << header.key_space << "x" << header.dim
                                  << " vs table " << table.key_space()
                                  << "x" << table.dim() << "); ignored");
        return false;
    }
    // Bound the state size before allocating: a corrupt header must not
    // drive a multi-GB allocation. No optimizer stores more than a few
    // floats per table element.
    const std::size_t row_floats =
        static_cast<std::size_t>(header.key_space) * header.dim;
    if (header.opt_state_floats > 4 * static_cast<std::uint64_t>(row_floats))
        return false;

    // Stage into buffers so a corrupt file never half-overwrites the
    // live table or optimizer.
    std::vector<float> staged(row_floats);
    in.read(reinterpret_cast<char *>(staged.data()),
            static_cast<std::streamsize>(staged.size() * sizeof(float)));
    std::vector<float> opt_state(
        static_cast<std::size_t>(header.opt_state_floats));
    if (!opt_state.empty()) {
        in.read(reinterpret_cast<char *>(opt_state.data()),
                static_cast<std::streamsize>(opt_state.size() *
                                             sizeof(float)));
    }
    std::uint64_t stored_checksum = 0;
    in.read(reinterpret_cast<char *>(&stored_checksum),
            sizeof(stored_checksum));
    if (!in.good())
        return false;

    const Step next_step = static_cast<Step>(header.next_step);
    if (ComputeChecksum(staged, opt_state, next_step) != stored_checksum) {
        FRUGAL_WARN("checkpoint " << path << " failed checksum; ignored");
        return false;
    }

    for (Key k = 0; k < table.key_space(); ++k) {
        float *row = table.MutableRow(k);
        const float *src =
            staged.data() + static_cast<std::size_t>(k) * table.dim();
        for (std::size_t j = 0; j < table.dim(); ++j)
            row[j] = src[j];
    }
    if (extras != nullptr) {
        header.opt_name[kOptNameBytes - 1] = '\0';
        extras->optimizer_name = header.opt_name;
        extras->optimizer_state = std::move(opt_state);
        extras->next_step = next_step;
    }
    return true;
}

}  // namespace frugal
