/**
 * @file
 * Embedding-table checkpointing.
 *
 * Production embedding training (the paper's target application) runs
 * continuously and must persist O(100 GB) host-resident tables; this
 * module provides the minimal durable format: a self-describing binary
 * file with a header (magic, version, shape, seed, resume cursor), the
 * row data, optimizer state, and a trailing checksum.
 *
 * Format v2 makes a checkpoint a *complete* training state: alongside
 * the rows it carries the optimizer's exported state (Adagrad
 * accumulators) and the trace cursor (`next_step`), so a resumed run
 * replays bit-identically to one that never stopped. v1 files (rows
 * only) are rejected as version skew — silently resuming without
 * optimizer state would diverge, which is worse than failing loudly.
 *
 * Durability: Save writes a temp file, fsyncs it, renames it over
 * `path`, then fsyncs the parent directory — the full
 * write/fsync/rename/fsync-dir dance, without which a crash can leave
 * either a torn file under the final name or a rename that the
 * directory never persisted. Transient I/O failures return false (the
 * caller retries or skips the checkpoint); only user errors — a path
 * that cannot ever work (missing directory, permission denied) — are
 * fatal.
 */
#ifndef FRUGAL_TABLE_CHECKPOINT_H_
#define FRUGAL_TABLE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/types.h"
#include "table/embedding_table.h"

namespace frugal {

/** Result of probing a checkpoint file. */
struct CheckpointInfo
{
    std::uint32_t version = 0;
    std::uint64_t key_space = 0;
    std::uint32_t dim = 0;
    std::uint64_t init_seed = 0;
    /** First trace step the resumed run should execute. */
    Step next_step = 0;
    std::string optimizer_name;
    /** Number of optimizer-state floats stored after the rows. */
    std::uint64_t opt_state_floats = 0;
};

/**
 * Everything beyond the raw rows that a *consistent* mid-training
 * snapshot must carry.
 */
struct CheckpointExtras
{
    /** Optimizer::Name() at save time; load validates it matches. */
    std::string optimizer_name = "sgd";
    /** Optimizer::ExportState() at save time (may be empty). */
    std::vector<float> optimizer_state;
    /** First trace step the resumed run should execute. */
    Step next_step = 0;
};

/**
 * Writes `table` plus `extras` to `path` (atomically: temp file +
 * fsync + rename + directory fsync).
 * @param injector optional armed fault injector; kCheckpointTruncate /
 *        kCheckpointCorrupt rules damage the temp file post-fsync to
 *        simulate torn or bit-rotted writes surviving a crash.
 * @return false on transient I/O failure (temp file removed, `path`
 *         untouched). Fatal only for user errors: a destination whose
 *         directory is missing or unwritable.
 */
[[nodiscard]] bool SaveCheckpoint(const HostEmbeddingTable &table,
                                  const CheckpointExtras &extras,
                                  const std::string &path,
                                  FaultInjector *injector = nullptr);

/** Convenience overload: end-of-run snapshot with no optimizer state. */
[[nodiscard]] bool SaveCheckpoint(const HostEmbeddingTable &table,
                                  const std::string &path);

/**
 * Loads a checkpoint into `table` (and `extras`, when non-null); the
 * file's shape must match the table's. Verifies the checksum over rows,
 * optimizer state, and cursor.
 * @return false (leaving the table untouched) if the file is missing,
 *         malformed, truncated, corrupt, version-skewed, or
 *         shape-mismatched.
 */
bool LoadCheckpoint(HostEmbeddingTable &table, const std::string &path,
                    CheckpointExtras *extras = nullptr);

/** Reads just the header; returns false if missing/malformed. */
bool ProbeCheckpoint(const std::string &path, CheckpointInfo *info);

}  // namespace frugal

#endif  // FRUGAL_TABLE_CHECKPOINT_H_
