/**
 * @file
 * Embedding-table checkpointing.
 *
 * Production embedding training (the paper's target application) runs
 * continuously and must persist O(100 GB) host-resident tables; this
 * module provides the minimal durable format: a self-describing binary
 * file with a header (magic, version, shape, seed), the row data, and a
 * trailing checksum. Save is only meaningful at a synchronous-consistency
 * point — after Engine::Run returns, every pending update has been
 * flushed (§3.3), so the host table *is* the model.
 */
#ifndef FRUGAL_TABLE_CHECKPOINT_H_
#define FRUGAL_TABLE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "table/embedding_table.h"

namespace frugal {

/** Result of probing a checkpoint file. */
struct CheckpointInfo
{
    std::uint64_t key_space = 0;
    std::uint32_t dim = 0;
    std::uint64_t init_seed = 0;
    std::uint64_t checksum = 0;
};

/**
 * Writes `table` to `path` (atomically: temp file + rename).
 * Fatal on I/O errors that indicate user problems (bad path, disk
 * full).
 */
void SaveCheckpoint(const HostEmbeddingTable &table,
                    const std::string &path);

/**
 * Loads a checkpoint into `table`; the file's shape must match the
 * table's. Verifies the checksum.
 * @return false (leaving the table untouched) if the file is missing,
 *         malformed, corrupt, or shape-mismatched.
 */
bool LoadCheckpoint(HostEmbeddingTable &table, const std::string &path);

/** Reads just the header; returns false if missing/malformed. */
bool ProbeCheckpoint(const std::string &path, CheckpointInfo *info);

}  // namespace frugal

#endif  // FRUGAL_TABLE_CHECKPOINT_H_
