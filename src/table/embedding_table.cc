#include "table/embedding_table.h"


#include "table/row_kernels.h"

namespace frugal {

HostEmbeddingTable::HostEmbeddingTable(const EmbeddingTableConfig &config)
    : config_(config),
      values_(static_cast<std::size_t>(config.key_space) * config.dim),
      versions_(new std::atomic<std::uint64_t>[config.key_space]),
      row_locks_(config.lock_stripes, LockRank::kTableRow)
{
    FRUGAL_CHECK_MSG(config.key_space > 0, "empty key space");
    FRUGAL_CHECK_MSG(config.dim > 0, "zero embedding dimension");
    ResetParameters();
}

float
HostEmbeddingTable::InitialValue(std::uint64_t seed, float scale, Key key,
                                 std::size_t j)
{
    // One SplitMix64 draw per element keyed on (seed, key, j); any party
    // holding the seed can reproduce the init without the table.
    std::uint64_t s = seed ^ (key * 0x9e3779b97f4a7c15ULL) ^
                      (static_cast<std::uint64_t>(j) << 32);
    const std::uint64_t bits = SplitMix64(s);
    const double unit =
        static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0,1)
    return static_cast<float>((2.0 * unit - 1.0) * scale);
}

void
HostEmbeddingTable::ResetParameters()
{
    for (Key key = 0; key < config_.key_space; ++key) {
        float *row = values_.data() + RowOffset(key);
        for (std::size_t j = 0; j < config_.dim; ++j) {
            row[j] = InitialValue(config_.init_seed, config_.init_scale,
                                  key, j);
        }
        // relaxed: ResetParameters runs single-threaded before workers
        // start; publication happens via thread creation.
        versions_[key].store(0, std::memory_order_relaxed);
    }
}

std::uint64_t
HostEmbeddingTable::ReadRow(Key key, float *out) const
{
    SpinGuard guard(row_locks_.For(key));
    RowCopy(out, values_.data() + RowOffset(key), config_.dim);
    // relaxed: the row lock already orders this load against the
    // writer's version bump (both run under the same stripe lock).
    return versions_[key].load(std::memory_order_relaxed);
}

void
HostEmbeddingTable::ReadRows(const Key *keys, std::size_t n,
                             float *const *outs) const
{
    const std::size_t dim = config_.dim;
    for (std::size_t i = 0; i < n; ++i) {
        SpinGuard guard(row_locks_.For(keys[i]));
        RowCopy(outs[i], values_.data() + RowOffset(keys[i]), dim);
    }
}

void
HostEmbeddingTable::ReadRows(const Key *keys, std::size_t n,
                             float *out) const
{
    const std::size_t dim = config_.dim;
    for (std::size_t i = 0; i < n; ++i) {
        SpinGuard guard(row_locks_.For(keys[i]));
        RowCopy(out + i * dim, values_.data() + RowOffset(keys[i]), dim);
    }
}

float *
HostEmbeddingTable::MutableRow(Key key)
{
    return values_.data() + RowOffset(key);
}

const float *
HostEmbeddingTable::Row(Key key) const
{
    return values_.data() + RowOffset(key);
}

std::uint64_t
HostEmbeddingTable::ApplyGradient(Key key, const float *grad,
                                  Optimizer &optimizer)
{
    SpinGuard guard(row_locks_.For(key));
    optimizer.Apply(key, values_.data() + RowOffset(key), grad,
                    config_.dim);
    return versions_[key].fetch_add(1, std::memory_order_release) + 1;
}

std::uint64_t
HostEmbeddingTable::ApplyGradients(Key key, const float *const *grads,
                                   std::size_t n, Optimizer &optimizer)
{
    SpinGuard guard(row_locks_.For(key));
    float *row = values_.data() + RowOffset(key);
    for (std::size_t i = 0; i < n; ++i)
        optimizer.Apply(key, row, grads[i], config_.dim);
    // One release publish for the whole run: a reader that observes the
    // bumped version also observes every row write the bump covers,
    // exactly as with n single bumps.
    return versions_[key].fetch_add(n, std::memory_order_release) + n;
}

std::uint64_t
HostEmbeddingTable::RowVersion(Key key) const
{
    FRUGAL_CHECK(key < config_.key_space);
    return versions_[key].load(std::memory_order_acquire);
}

}  // namespace frugal
