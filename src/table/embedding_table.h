/**
 * @file
 * The host-memory embedding table — the authoritative, complete parameter
 * set that the controller process manages and exposes to every trainer
 * (Fig. 5). In the real system this lives in (huge) host DRAM behind a
 * shared-memory interface; here it is a dense float matrix with per-row
 * version counters that the consistency auditor uses to detect stale
 * reads.
 *
 * Thread-safety: rows are independent; each row is guarded by a striped
 * lock so concurrent flush threads (disjoint keys by construction, but
 * the lock makes the guarantee local) and baseline engines can commit
 * updates safely. Reads during training are race-free by the P²F gate —
 * the auditor checks that, rather than assuming it.
 */
#ifndef FRUGAL_TABLE_EMBEDDING_TABLE_H_
#define FRUGAL_TABLE_EMBEDDING_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/spinlock.h"
#include "common/types.h"
#include "table/optimizer.h"

namespace frugal {

/** Configuration of a host embedding table. */
struct EmbeddingTableConfig
{
    std::uint64_t key_space = 0;   ///< number of rows (c in the paper)
    std::size_t dim = 32;          ///< embedding dimension (d)
    std::uint64_t init_seed = 42;  ///< deterministic init seed
    float init_scale = 0.01f;      ///< uniform init range [-scale, scale)
    std::size_t lock_stripes = 1024;
};

/** Dense host-resident embedding table with versioned rows. */
class HostEmbeddingTable
{
  public:
    explicit HostEmbeddingTable(const EmbeddingTableConfig &config);

    HostEmbeddingTable(const HostEmbeddingTable &) = delete;
    HostEmbeddingTable &operator=(const HostEmbeddingTable &) = delete;

    std::uint64_t key_space() const { return config_.key_space; }
    std::size_t dim() const { return config_.dim; }

    /** Copies the row for `key` into `out` (size dim()). Returns the row
     *  version observed, for consistency auditing. */
    std::uint64_t ReadRow(Key key, float *out) const;

    /**
     * Batch gather: copies the row for `keys[i]` into `outs[i]` (each
     * `dim()` floats) for i in [0, n). One call amortises the per-row
     * call and version-read overhead of the trainer gather loop; rows
     * are still copied under their stripe locks, so the per-row
     * consistency guarantee is unchanged (versions are not reported —
     * gather callers do their auditing through the g-entry path).
     */
    void ReadRows(const Key *keys, std::size_t n, float *const *outs) const;

    /** As above into one contiguous buffer: row i at out + i*dim(). */
    void ReadRows(const Key *keys, std::size_t n, float *out) const;

    /** Direct pointer to a row; caller must ensure exclusion (tests and
     *  single-threaded oracles only). */
    float *MutableRow(Key key);
    const float *Row(Key key) const;

    /**
     * Applies one gradient through `optimizer` under the row lock and
     * bumps the row version. Returns the new version.
     */
    std::uint64_t ApplyGradient(Key key, const float *grad,
                                Optimizer &optimizer);

    /**
     * Applies `n` gradients to one row under a single row-lock
     * acquisition, in the order given — bit-identical to `n` successive
     * ApplyGradient calls (the per-record optimizer application is
     * unchanged; only the lock/version traffic is batched). The flush
     * path uses this to commit a claimed g-entry's whole W set, already
     * in canonical (step, src) order, with one lock round-trip.
     * Returns the new version (bumped by `n`).
     */
    std::uint64_t ApplyGradients(Key key, const float *const *grads,
                                 std::size_t n, Optimizer &optimizer);

    /** Row version (number of updates committed so far). */
    std::uint64_t RowVersion(Key key) const;

    /** Re-initialises every row deterministically from the seed. */
    void ResetParameters();

    /** Model size in bytes (values only), as Table 2 reports. */
    std::uint64_t SizeBytes() const
    {
        return config_.key_space * config_.dim * sizeof(float);
    }

    /** The deterministic initial value of row `key`, element `j`; shared
     *  with oracles so they can reproduce init without a table copy. */
    static float InitialValue(std::uint64_t seed, float scale, Key key,
                              std::size_t j);

  private:
    std::size_t
    RowOffset(Key key) const
    {
        FRUGAL_CHECK_MSG(key < config_.key_space,
                         "key " << key << " out of range");
        return static_cast<std::size_t>(key) * config_.dim;
    }

    const EmbeddingTableConfig config_;
    // values_ and versions_ are guarded by *dynamically chosen* stripes
    // (row i under row_locks_.For(key)), which static thread-safety
    // analysis cannot express — the stripe discipline is enforced by
    // review plus the interleaving explorer, not by GUARDED_BY.
    // tsa-exempt: striped row locks; see the paragraph above.
    std::vector<float> values_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> versions_;
    mutable StripedLocks row_locks_;
};

}  // namespace frugal

#endif  // FRUGAL_TABLE_EMBEDDING_TABLE_H_
