#include "table/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace frugal {

AdagradOptimizer::AdagradOptimizer(float learning_rate,
                                   std::size_t key_space, std::size_t dim,
                                   float epsilon)
    : learning_rate_(learning_rate),
      epsilon_(epsilon),
      dim_(dim),
      accumulators_(key_space * dim, 0.0f)
{
}

void
AdagradOptimizer::Apply(Key key, float *row, const float *grad,
                        std::size_t dim)
{
    FRUGAL_CHECK(dim == dim_);
    float *acc = accumulators_.data() + static_cast<std::size_t>(key) * dim_;
    for (std::size_t j = 0; j < dim; ++j) {
        acc[j] += grad[j] * grad[j];
        row[j] -= learning_rate_ * grad[j] /
                  (std::sqrt(acc[j]) + epsilon_);
    }
}

bool
AdagradOptimizer::ImportState(const std::vector<float> &state)
{
    if (state.size() != accumulators_.size()) {
        FRUGAL_WARN("adagrad state size mismatch: got "
                    << state.size() << " floats, expected "
                    << accumulators_.size() << "; state not imported");
        return false;
    }
    accumulators_ = state;
    return true;
}

std::unique_ptr<Optimizer>
MakeOptimizer(const std::string &name, float learning_rate,
              std::size_t key_space, std::size_t dim)
{
    if (name == "sgd")
        return std::make_unique<SgdOptimizer>(learning_rate);
    if (name == "adagrad") {
        return std::make_unique<AdagradOptimizer>(learning_rate, key_space,
                                                  dim);
    }
    FRUGAL_FATAL("unknown optimizer: " << name);
}

}  // namespace frugal
