#include "table/optimizer.h"

#include "common/logging.h"

namespace frugal {

AdagradOptimizer::AdagradOptimizer(float learning_rate,
                                   std::size_t key_space, std::size_t dim,
                                   float epsilon)
    : learning_rate_(learning_rate),
      epsilon_(epsilon),
      dim_(dim),
      accumulators_(key_space * dim, 0.0f)
{
}

void
AdagradOptimizer::Apply(Key key, float *row, const float *grad,
                        std::size_t dim)
{
    FRUGAL_CHECK(dim == dim_);
    float *acc = accumulators_.data() + static_cast<std::size_t>(key) * dim_;
    // Vectorised, bit-exact vs the scalar loop (see row_kernels.h).
    RowAdagradApply(row, acc, grad, learning_rate_, epsilon_, dim);
}

bool
AdagradOptimizer::ImportState(const std::vector<float> &state)
{
    if (state.size() != accumulators_.size()) {
        FRUGAL_WARN("adagrad state size mismatch: got "
                    << state.size() << " floats, expected "
                    << accumulators_.size() << "; state not imported");
        return false;
    }
    accumulators_ = state;
    return true;
}

std::unique_ptr<Optimizer>
MakeOptimizer(const std::string &name, float learning_rate,
              std::size_t key_space, std::size_t dim)
{
    if (name == "sgd")
        return std::make_unique<SgdOptimizer>(learning_rate);
    if (name == "adagrad") {
        return std::make_unique<AdagradOptimizer>(learning_rate, key_space,
                                                  dim);
    }
    FRUGAL_FATAL("unknown optimizer: " << name);
}

}  // namespace frugal
