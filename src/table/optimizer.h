/**
 * @file
 * Sparse optimizers applied row-wise to embedding parameters.
 *
 * The optimizer is applied by whichever component commits an update to a
 * parameter copy: the flush threads (host memory + owner cache, Frugal),
 * or the trainer itself (baseline engines). SGD is the default — its
 * per-row commutativity is what lets Frugal reorder flushes freely;
 * Adagrad is provided to exercise stateful optimizers (state lives with
 * the host row, and updates are applied in (step, src) order, so results
 * stay deterministic).
 */
#ifndef FRUGAL_TABLE_OPTIMIZER_H_
#define FRUGAL_TABLE_OPTIMIZER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "table/row_kernels.h"

namespace frugal {

/** Row-wise sparse optimizer. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /**
     * Applies one gradient to one row in place.
     * @param key  the row's key (indexes optimizer state, if any)
     * @param row  pointer to `dim` parameter values
     * @param grad pointer to `dim` gradient values
     * @param dim  embedding dimension
     */
    virtual void Apply(Key key, float *row, const float *grad,
                       std::size_t dim) = 0;

    virtual std::string Name() const = 0;

    /**
     * Serialises the optimizer's full state as a flat float vector
     * (empty for stateless optimizers). Together with the table rows
     * this makes a checkpoint a *complete* training state: resuming
     * without it silently restarts stateful optimizers (Adagrad) from
     * zero accumulators and diverges from an uninterrupted run.
     */
    virtual std::vector<float> ExportState() const { return {}; }

    /**
     * Restores state produced by ExportState on an identically shaped
     * optimizer. @return false (leaving the state untouched) on a
     * size/shape mismatch.
     */
    virtual bool
    ImportState(const std::vector<float> &state)
    {
        return state.empty();
    }
};

/** Plain SGD: row -= lr * grad. Stateless and commutative per row. */
class SgdOptimizer final : public Optimizer
{
  public:
    explicit SgdOptimizer(float learning_rate)
        : learning_rate_(learning_rate)
    {
    }

    void
    Apply(Key, float *row, const float *grad, std::size_t dim) override
    {
        // Vectorised, bit-exact vs the scalar loop (see row_kernels.h).
        RowSgdApply(row, grad, learning_rate_, dim);
    }

    std::string Name() const override { return "sgd"; }

    float learning_rate() const { return learning_rate_; }

  private:
    float learning_rate_;
};

/**
 * Adagrad with dense per-row accumulator state.
 * State is allocated for the full key space up front; intended for the
 * functional runtime's moderate table sizes.
 */
class AdagradOptimizer final : public Optimizer
{
  public:
    AdagradOptimizer(float learning_rate, std::size_t key_space,
                     std::size_t dim, float epsilon = 1e-10f);

    void Apply(Key key, float *row, const float *grad,
               std::size_t dim) override;

    std::string Name() const override { return "adagrad"; }

    std::vector<float> ExportState() const override
    {
        return accumulators_;
    }

    bool ImportState(const std::vector<float> &state) override;

  private:
    float learning_rate_;
    float epsilon_;
    std::size_t dim_;
    std::vector<float> accumulators_;
};

/** Builds an optimizer by name ("sgd" or "adagrad"). */
std::unique_ptr<Optimizer>
MakeOptimizer(const std::string &name, float learning_rate,
              std::size_t key_space, std::size_t dim);

}  // namespace frugal

#endif  // FRUGAL_TABLE_OPTIMIZER_H_
