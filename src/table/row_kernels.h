/**
 * @file
 * Bit-exact vectorised row kernels for the embedding hot paths.
 *
 * Every per-row float loop in the data plane (cache copy-in/out, host
 * table gather, SGD/Adagrad apply) funnels through these kernels. They
 * are written to auto-vectorise — `__restrict` pointers so the compiler
 * can prove no aliasing, a dim-dispatch switch so the common embedding
 * dimensions get fixed trip counts (fully unrolled SIMD, no scalar
 * epilogue), and a vectorisation pragma on each loop — while staying
 * **bit-identical** to the scalar reference:
 *
 *  - strictly element-wise: lane j reads and writes only index j, so
 *    vectorisation changes instruction selection, never evaluation
 *    order — there are NO reductions to reassociate;
 *  - the arithmetic expression per element is literally the one the
 *    scalar code used (`row[j] -= lr * grad[j]`, Adagrad's
 *    `acc += g*g; row -= lr*g/(sqrt(acc)+eps)`), so any FP contraction
 *    the compiler applies is applied identically in both shapes;
 *  - sqrt and division are IEEE-correctly-rounded in both scalar and
 *    SIMD forms; no fast-math anywhere in the build.
 *
 * This is what lets the engine keep the oracle-equality guarantee
 * (TablesBitEqual) from PRs 1–2 while the hot loops run wide.
 */
#ifndef FRUGAL_TABLE_ROW_KERNELS_H_
#define FRUGAL_TABLE_ROW_KERNELS_H_

#include <cstddef>

/** Per-loop vectorisation hint. `ivdep`/`vectorize(enable)` assert
 *  independence of iterations (true here: element-wise), they do NOT
 *  license reassociation — unlike `-ffast-math`, results are unchanged. */
#if defined(__clang__)
#define FRUGAL_SIMD_LOOP \
    _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define FRUGAL_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define FRUGAL_SIMD_LOOP
#endif

namespace frugal {

namespace rowk {

/** Inner bodies: callers pass a compile-time-constant `dim` through the
 *  dispatch switch below, so inlining yields fixed-trip-count loops. */

inline void
CopyBody(float *__restrict dst, const float *__restrict src,
         std::size_t dim)
{
    FRUGAL_SIMD_LOOP
    for (std::size_t j = 0; j < dim; ++j)
        dst[j] = src[j];
}

inline void
AxpyBody(float *__restrict y, float a, const float *__restrict x,
         std::size_t dim)
{
    FRUGAL_SIMD_LOOP
    for (std::size_t j = 0; j < dim; ++j)
        y[j] += a * x[j];
}

inline void
SgdBody(float *__restrict row, const float *__restrict grad, float lr,
        std::size_t dim)
{
    // Identical expression to the scalar SgdOptimizer::Apply of old.
    FRUGAL_SIMD_LOOP
    for (std::size_t j = 0; j < dim; ++j)
        row[j] -= lr * grad[j];
}

inline void
AdagradBody(float *__restrict row, float *__restrict acc,
            const float *__restrict grad, float lr, float eps,
            std::size_t dim)
{
    // Identical expressions/order to the scalar AdagradOptimizer::Apply
    // of old; sqrtf and the divide are correctly rounded in SIMD too.
    FRUGAL_SIMD_LOOP
    for (std::size_t j = 0; j < dim; ++j) {
        acc[j] += grad[j] * grad[j];
        row[j] -= lr * grad[j] / (__builtin_sqrtf(acc[j]) + eps);
    }
}

/** Dispatches `body(..., dim)` with a literal dim for the common
 *  embedding sizes so each case compiles to a fixed-trip-count loop. */
#define FRUGAL_ROW_DISPATCH(body, dim, ...)    \
    switch (dim) {                             \
        case 4: body(__VA_ARGS__, 4); break;   \
        case 8: body(__VA_ARGS__, 8); break;   \
        case 16: body(__VA_ARGS__, 16); break; \
        case 32: body(__VA_ARGS__, 32); break; \
        case 64: body(__VA_ARGS__, 64); break; \
        case 128: body(__VA_ARGS__, 128); break; \
        default: body(__VA_ARGS__, dim); break;  \
    }

}  // namespace rowk

/** dst[j] = src[j] */
inline void
RowCopy(float *__restrict dst, const float *__restrict src,
        std::size_t dim)
{
    FRUGAL_ROW_DISPATCH(rowk::CopyBody, dim, dst, src)
}

/** y[j] += a * x[j] */
inline void
RowAxpy(float *__restrict y, float a, const float *__restrict x,
        std::size_t dim)
{
    FRUGAL_ROW_DISPATCH(rowk::AxpyBody, dim, y, a, x)
}

/** row[j] -= lr * grad[j] (SGD apply) */
inline void
RowSgdApply(float *__restrict row, const float *__restrict grad, float lr,
            std::size_t dim)
{
    FRUGAL_ROW_DISPATCH(rowk::SgdBody, dim, row, grad, lr)
}

/** acc[j] += grad[j]²; row[j] -= lr·grad[j]/(√acc[j]+eps) (Adagrad) */
inline void
RowAdagradApply(float *__restrict row, float *__restrict acc,
                const float *__restrict grad, float lr, float eps,
                std::size_t dim)
{
    FRUGAL_ROW_DISPATCH(rowk::AdagradBody, dim, row, acc, grad, lr, eps)
}

}  // namespace frugal

#endif  // FRUGAL_TABLE_ROW_KERNELS_H_
