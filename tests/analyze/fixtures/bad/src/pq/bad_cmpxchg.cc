// Known-bad atomics fixture: a compare_exchange whose failure order is
// memory_order_release, which the C++ standard forbids outright.

namespace frugal {

inline bool ClaimFixture(model_atomic<int> &slot)
{
    int expected = 0;
    return slot.compare_exchange_strong(
        expected, 1, std::memory_order_acq_rel,
        std::memory_order_release);  // EXPECT:atomics-cmpxchg
}

}  // namespace frugal
