// Known-bad atomics fixture: a bare std::atomic member inside the
// model-checked core (pq/) with no exemption tag — state the
// interleaving explorer cannot intercept.

namespace frugal {

struct RawAtomicFixture
{
    std::atomic<int> spins{0};  // EXPECT:atomics-raw
};

}  // namespace frugal
