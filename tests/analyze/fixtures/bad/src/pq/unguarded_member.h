// Known-bad tsa-coverage fixture: a lock-owning class with a mutable
// data member that is neither FRUGAL_GUARDED_BY one of its locks nor
// carries an exemption tag.

namespace frugal {

class UnguardedMemberFixture
{
  public:
    void Bump();

  private:
    Spinlock lock_{LockRank::kGEntry};
    unsigned long hits_ = 0;  // EXPECT:tsa-coverage
};

}  // namespace frugal
