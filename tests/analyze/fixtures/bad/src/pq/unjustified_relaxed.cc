// Known-bad atomics fixture: a relaxed load with no justification tag
// on the line or in the window above it.

namespace frugal {

inline unsigned PeekFixture(const model_atomic<unsigned> &counter)
{
    return counter.load(std::memory_order_relaxed);  // EXPECT:atomics-relaxed
}

}  // namespace frugal
