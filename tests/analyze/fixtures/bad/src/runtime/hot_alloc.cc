// Known-bad hot-path fixture: the driver runs the analyzer with
// `--hot FixtureHotLoop`, so this direct `new` (with no exemption tag)
// must be flagged as an allocation on a hot path.

namespace frugal {

inline float *FixtureHotLoop(unsigned long n)
{
    return new float[n];  // EXPECT:hotpath-alloc
}

}  // namespace frugal
