// Known-bad lock-rank fixture: acquires a kGEntry guard while a
// kTableRow guard is held in the same scope. Ranks must strictly
// increase inward (see src/common/lock_rank.h), so the nested
// acquisition below is an inversion.
//
// Fixture TUs are never compiled — the analyzer reads them lexically,
// so the Spinlock/SpinGuard vocabulary needs no includes here.

namespace frugal {

class RankInversionFixture
{
  public:
    void DowngradeUnderRowLock()
    {
        SpinGuard row(row_lock_);
        SpinGuard entry(entry_lock_);  // EXPECT:lock-rank
    }

  private:
    Spinlock row_lock_{LockRank::kTableRow};
    Spinlock entry_lock_{LockRank::kGEntry};
};

}  // namespace frugal
