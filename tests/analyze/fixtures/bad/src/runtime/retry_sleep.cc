// Known-bad retry fixture: a hand-rolled retry loop whose backoff is a
// bare sleep_for with no `retry-exempt:` tag. The retry-loop check must
// flag the sleep line and point the author at RetryWithBackoff.

namespace frugal {

inline bool FixtureFlakyWrite();

inline bool FixtureRetryLoop()
{
    for (int attempt = 0; attempt < 8; ++attempt) {
        if (FixtureFlakyWrite()) {
            return true;
        }
        std::this_thread::sleep_for(  // EXPECT:retry-loop
            std::chrono::milliseconds(1 << attempt));
    }
    return false;
}

}  // namespace frugal
