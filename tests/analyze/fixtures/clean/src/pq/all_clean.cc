// All-clean fixture: the same constructs the known-bad fixtures use,
// each carrying the discipline the checks require — correctly ordered
// nested guards, an annotated member plus a tagged exemption, a
// justified relaxed load, an exempted raw atomic, a legal
// compare_exchange order pair, a retry-exempt monitor sleep, and a
// tagged hot-path allocation
// (the driver passes `--hot FixtureHotLoop` here too). The driver
// asserts the analyzer reports zero findings for this tree.

namespace frugal {

class CleanFixture
{
  public:
    void OrderedAcquire()
    {
        SpinGuard entry(entry_lock_);
        SpinGuard row(row_lock_);  // ranks increase inward: 20 -> 40
    }

    unsigned Peek() const
    {
        // relaxed: monotonic stats counter; readers tolerate staleness.
        return stats_.load(std::memory_order_relaxed);
    }

    bool Claim()
    {
        int expected = 0;
        return slot_.compare_exchange_strong(
            expected, 1, std::memory_order_acq_rel,
            std::memory_order_acquire);
    }

  private:
    Spinlock entry_lock_{LockRank::kGEntry};
    Spinlock row_lock_{LockRank::kTableRow};
    unsigned pending_ FRUGAL_GUARDED_BY(entry_lock_) = 0;
    // tsa-exempt: confined to the constructing thread in this fixture.
    unsigned warmup_ = 0;
    // modelcheck-exempt: stats only; never part of a lock-free protocol.
    std::atomic<unsigned> stats_{0};
    model_atomic<int> slot_{0};
};

inline void FixtureMonitorTick()
{
    // retry-exempt: monitor sampling period, not a retry backoff.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

inline void FixtureHotLoop(std::vector<float> &out)
{
    // alloc-ok: capacity pre-reserved by the caller in this fixture.
    out.push_back(1.0f);
}

}  // namespace frugal
