// Known-bad whole-program fixture: a lock-rank inversion three calls
// below the holding frame. Each hop lives in its own class, so the
// per-scope lock-rank check sees nothing; only the v2 call-graph
// summaries can connect the holder to the bottom acquisition. The
// driver asserts the diagnostic anchors on the top call site and
// carries the full call path as note lines.
//
// Fixture TUs are never compiled — the analyzer reads them lexically,
// so the Spinlock/SpinGuard vocabulary needs no includes here.

namespace frugal {

class DeepBottom
{
  public:
    void AcquireEntry()
    {
        SpinGuard entry(entry_lock_);
    }

  private:
    Spinlock entry_lock_{LockRank::kGEntry};
};

class DeepMidTwo
{
  public:
    void HopTwo()
    {
        bottom_.AcquireEntry();
    }

  private:
    DeepBottom bottom_;
};

class DeepMidOne
{
  public:
    void HopOne()
    {
        mid_.HopTwo();
    }

  private:
    DeepMidTwo mid_;
};

class DeepTop
{
  public:
    void CallsDownHoldingRow()
    {
        SpinGuard row(row_lock_);
        mid_.HopOne();  // EXPECT:lock-rank-deep
    }

  private:
    Spinlock row_lock_{LockRank::kTableRow};
    // tsa-exempt: fixture wiring; touched only under row_lock_.
    DeepMidOne mid_;
};

}  // namespace frugal
