// Cycle fixtures: direct recursion and a two-function mutual
// recursion, one of them allocating. The summary fixpoint condenses
// both cycles into SCCs and must converge without hanging; neither
// function runs under a lock, so the analyzer must report nothing
// here. (DeepPong calls DeepPing before its definition: fixtures are
// read lexically, never compiled, so no forward declaration is
// needed.)

namespace frugal {

inline unsigned long DeepCountdown(unsigned long n)
{
    if (n == 0)
        return 0;
    return DeepCountdown(n - 1);
}

inline unsigned long DeepPong(std::vector<unsigned long> &buf,
                              unsigned long n)
{
    if (n == 0)
        return 0;
    buf.push_back(n);
    return DeepPing(buf, n - 1);
}

inline unsigned long DeepPing(std::vector<unsigned long> &buf,
                              unsigned long n)
{
    if (n == 0)
        return 1;
    return DeepPong(buf, n - 1);
}

}  // namespace frugal
