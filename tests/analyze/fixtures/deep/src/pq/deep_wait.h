// Known-bad whole-program fixture: a condition-variable wait two
// frames below a Spinlock section. A blocked CV wait parks the thread
// while every other contender on the spinlock burns a core; the
// summary propagation must surface the wait at the top call site with
// the chain as notes.

namespace frugal {

class WaitBottom
{
  public:
    void BlockOnCv(std::unique_lock<std::mutex> &lk)
    {
        cv_.wait(lk);
    }

  private:
    std::condition_variable cv_;
};

class WaitMid
{
  public:
    void HopToWait(std::unique_lock<std::mutex> &lk)
    {
        bottom_.BlockOnCv(lk);
    }

  private:
    WaitBottom bottom_;
};

class WaitTop
{
  public:
    void WaitUnderSpin(std::unique_lock<std::mutex> &lk)
    {
        SpinGuard entry(entry_lock_);
        mid_.HopToWait(lk);  // EXPECT:spin-blocking
    }

  private:
    Spinlock entry_lock_{LockRank::kGEntry};
    // tsa-exempt: fixture wiring; touched only under entry_lock_.
    WaitMid mid_;
};

}  // namespace frugal
