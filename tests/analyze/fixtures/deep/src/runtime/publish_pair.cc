// Known-bad atomic-publication fixtures. SilentPublisher's release
// store has no acquire-side load anywhere in the program, so the
// publication is unobservable. SeqWriter's relaxed store is read with
// memory_order_acquire from a different class: the reader looks like
// it synchronizes but pairs with nothing.

namespace frugal {

class SilentPublisher
{
  public:
    void MarkReady()
    {
        ready_.store(1, std::memory_order_release);  // EXPECT:atomic-publish
    }

  private:
    std::atomic<int> ready_{0};
};

class SeqWriter
{
  public:
    void Advance(unsigned v)
    {
        // relaxed: fixture deliberately publishes without ordering.
        seq_.store(v, std::memory_order_relaxed);  // EXPECT:atomic-publish
    }

  private:
    std::atomic<unsigned> seq_{0};
};

class SeqReader
{
  public:
    unsigned Sample()
    {
        return writer_.seq_.load(std::memory_order_acquire);
    }

  private:
    SeqWriter writer_;
};

}  // namespace frugal
