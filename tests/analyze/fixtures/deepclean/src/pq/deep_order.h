// All-clean deep-chain fixtures, mirroring the known-bad `deep` tree:
// the same call shapes with the discipline the v2 checks require. The
// driver asserts the analyzer reports zero findings here under both
// frontends.
//
// CleanTop holds kGEntry (20) and the chain acquires kTableRow (40):
// ranks increase inward, so the transitive propagation must stay
// silent. CleanTagged reaches an allocation under its spinlock but the
// call site carries `spin-block-ok:`.

namespace frugal {

class CleanBottom
{
  public:
    void AcquireRow()
    {
        SpinGuard row(row_lock_);
    }

  private:
    Spinlock row_lock_{LockRank::kTableRow};
};

class CleanMid
{
  public:
    void Hop()
    {
        bottom_.AcquireRow();
    }

  private:
    CleanBottom bottom_;
};

class CleanTop
{
  public:
    void CallsDownHoldingEntry()
    {
        SpinGuard entry(entry_lock_);
        mid_.Hop();
    }

  private:
    Spinlock entry_lock_{LockRank::kGEntry};
    // tsa-exempt: fixture wiring; touched only under entry_lock_.
    CleanMid mid_;
};

class CleanAppend
{
  public:
    void Append(std::vector<unsigned> &out, unsigned v)
    {
        out.push_back(v);
    }
};

class CleanTagged
{
  public:
    void AppendUnderLock(std::vector<unsigned> &out, unsigned v)
    {
        SpinGuard entry(entry_lock_);
        // spin-block-ok: fixture; the caller pre-reserves the buffer,
        // so the append below never reallocates under the lock.
        helper_.Append(out, v);
    }

  private:
    Spinlock entry_lock_{LockRank::kGEntry};
    // tsa-exempt: fixture wiring; touched only under entry_lock_.
    CleanAppend helper_;
};

}  // namespace frugal
