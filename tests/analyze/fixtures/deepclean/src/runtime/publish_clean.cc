// All-clean publication pairing: the release store in PairedPublisher
// is observed by PairedConsumer's acquire load, so atomic-publish must
// treat the pair as synchronized and stay silent.

namespace frugal {

class PairedPublisher
{
  public:
    void MarkReady()
    {
        ready_.store(1, std::memory_order_release);
    }

  private:
    std::atomic<int> ready_{0};
};

class PairedConsumer
{
  public:
    bool Poll()
    {
        return pub_.ready_.load(std::memory_order_acquire) != 0;
    }

  private:
    PairedPublisher pub_;
};

}  // namespace frugal
