// Layering fixture, known-bad edge: common (rank 1) including runtime
// (rank 4) is a back-edge in the module DAG. The driver asserts the
// `layering` check fires on the marked include line and nowhere else.
#ifndef ANALYZE_FIXTURE_COMMON_BAD_INCLUDE_H_
#define ANALYZE_FIXTURE_COMMON_BAD_INCLUDE_H_

#include "common/util_stub.h"
#include "runtime/engine_stub.h"  // EXPECT:layering

inline int fixture_uses_runtime() { return fixture_engine_stub(); }

#endif  // ANALYZE_FIXTURE_COMMON_BAD_INCLUDE_H_
