// Layering fixture, clean leaf: a rank-1 (common) header with no
// includes at all. Both the legal and the illegal edge in this fixture
// tree point at this file's module.
#ifndef ANALYZE_FIXTURE_COMMON_UTIL_STUB_H_
#define ANALYZE_FIXTURE_COMMON_UTIL_STUB_H_

inline int fixture_util_stub() { return 42; }

#endif  // ANALYZE_FIXTURE_COMMON_UTIL_STUB_H_
