// Layering fixture, legal edge: runtime (rank 4) including common
// (rank 1) points *down* the module DAG and must produce no finding.
#ifndef ANALYZE_FIXTURE_RUNTIME_ENGINE_STUB_H_
#define ANALYZE_FIXTURE_RUNTIME_ENGINE_STUB_H_

#include "common/util_stub.h"

inline int fixture_engine_stub() { return fixture_util_stub(); }

#endif  // ANALYZE_FIXTURE_RUNTIME_ENGINE_STUB_H_
