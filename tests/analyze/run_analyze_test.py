#!/usr/bin/env python3
"""Test driver for scripts/frugal_analyze (ctest label: analyze).

Seven suites:

1. Fixture TUs under tests/analyze/fixtures/: one known-bad snippet per
   check plus all-clean trees. Expected findings are written *in* the
   fixtures as `// EXPECT:<check-id>` markers on the exact line the
   diagnostic must anchor to; the driver asserts the analyzer's finding
   set equals the marker set (nothing missing, nothing extra) and that
   the eleven check ids are collectively covered. The `deep` /
   `deepclean` trees exercise the v2 call-graph summaries: transitive
   rank inversion, CV wait below a Spinlock section, publication
   pairing, and recursion cycles the fixpoint must survive.
2. Call-path notes: the deep findings must carry the full chain as
   `note:` continuation lines down to the bottom frame.
3. A synthetic clang -ast-dump=json walk through
   frontend_clang.collect_from_ast — the clang frontend's extraction is
   unit-tested even on hosts without clang++ (this repo's CI container),
   and the extracted facts are pushed through run_checks end to end.
4. The LOCK_RANKS table in frugal_analyze.project cross-checked against
   the enumerators in src/common/lock_rank.h.
5. Incremental-cache invalidation: mutating a header re-extracts every
   file whose quoted-include closure contains it, not just the header.
6. `--format=sarif` emits valid SARIF 2.1.0 with one result per finding.
7. The scripts/lint_atomics.py shim: fires on the bad fixtures, stays
   quiet on the clean tree, and keeps its CLI exit semantics.
"""

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

TESTS = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(TESTS))
SCRIPTS = os.path.join(REPO, "scripts")
FIXTURES = os.path.join(TESTS, "fixtures")

sys.path.insert(0, SCRIPTS)

from frugal_analyze.checks import CHECK_IDS, CheckConfig, run_checks  # noqa: E402
from frugal_analyze.facts import ProjectFacts  # noqa: E402
from frugal_analyze import frontend_clang  # noqa: E402
from frugal_analyze.project import LOCK_RANKS  # noqa: E402

EXPECT_RE = re.compile(r"EXPECT:([\w-]+)")
DIAG_RE = re.compile(r"^(.*?):(\d+): ([\w-]+): ")

failures = []


def check(cond, label):
    print(f"  {'ok  ' if cond else 'FAIL'} {label}")
    if not cond:
        failures.append(label)


def expected_findings(root):
    """(src-relative path, line, check-id) triples from EXPECT markers."""
    out = set()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                for lineno, text in enumerate(f, 1):
                    for m in EXPECT_RE.finditer(text):
                        out.add((rel, lineno, m.group(1)))
    return out


def run_analyzer(src_root, *extra):
    cmd = [sys.executable, os.path.join(SCRIPTS, "frugal_analyze"),
           "--frontend", "internal", "--no-cache", "--no-baseline",
           "--src-root", src_root, src_root, *extra]
    return subprocess.run(cmd, capture_output=True, text=True)


def parse_findings(stdout):
    out = set()
    for line in stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            out.add((m.group(1), int(m.group(2)), m.group(3)))
    return out


def test_fixtures():
    print("== fixture TUs ==")
    covered = set()
    for name, extra, want_exit in (
            ("layering", (), 1),
            ("bad", ("--hot", "FixtureHotLoop"), 1),
            ("clean", ("--hot", "FixtureHotLoop"), 0),
            ("deep", (), 1),
            ("deepclean", (), 0)):
        src = os.path.join(FIXTURES, name, "src")
        proc = run_analyzer(src, *extra)
        want = expected_findings(src)
        got = parse_findings(proc.stdout)
        covered |= {c for _, _, c in want}
        check(proc.returncode == want_exit,
              f"{name}: exit code {proc.returncode} == {want_exit}")
        check(got == want, f"{name}: findings == EXPECT markers "
                           f"({len(want)} expected)")
        for f in sorted(want - got):
            print(f"    missing: {f}")
        for f in sorted(got - want):
            print(f"    surplus: {f}")
    check(covered == set(CHECK_IDS),
          f"fixtures cover every check id ({', '.join(sorted(covered))})")


def test_deep_call_path():
    """The transitive findings must carry the full chain as notes."""
    print("== deep-chain call paths ==")
    proc = run_analyzer(os.path.join(FIXTURES, "deep", "src"))
    out = proc.stdout
    check("note: calls mid_.HopOne while holding row_lock_" in out,
          "lock-rank-deep head note names the held lock")
    for hop in ("note: at pq/deep_rank.h:42: calls mid_.HopTwo",
                "note: at pq/deep_rank.h:30: calls bottom_.AcquireEntry",
                "note: at pq/deep_rank.h:18: "
                "acquires entry_lock_ (LockRank::kGEntry)"):
        check(hop in out, f"lock-rank-deep trace hop: {hop[9:]}")
    check("3 frame(s) deep" in out,
          "lock-rank-deep reports the chain depth")
    check("note: at pq/deep_wait.h:14: cv-wait" in out,
          "spin-blocking trace bottoms out at the CV wait")
    check("note: at runtime/publish_pair.cc:39: load by 'SeqReader'"
          in out, "atomic-publish names the mispaired reader")


def _run_cached(src_root, cache_dir):
    cmd = [sys.executable, os.path.join(SCRIPTS, "frugal_analyze"),
           "--frontend", "internal", "--no-baseline", "--stats",
           "--cache-dir", cache_dir, "--src-root", src_root, src_root]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    m = re.search(r"cache hits=(\d+) misses=(\d+)", proc.stderr)
    return proc, (int(m.group(1)), int(m.group(2))) if m else None


def test_cache_invalidation():
    """Editing a header must re-extract every includer (the cache key
    folds in the quoted-include closure, not just the file's bytes)."""
    print("== incremental-cache include-closure invalidation ==")
    tmp = tempfile.mkdtemp(prefix="frugal_analyze_cache_")
    try:
        src = os.path.join(tmp, "src")
        cache = os.path.join(tmp, "cache")
        os.makedirs(os.path.join(src, "common"))
        os.makedirs(os.path.join(src, "pq"))
        header = os.path.join(src, "common", "dep_header.h")
        with open(header, "w", encoding="utf-8") as f:
            f.write("namespace frugal {\n"
                    "inline unsigned DepHelper(unsigned n)\n"
                    "{\n    return n + 1;\n}\n"
                    "}  // namespace frugal\n")
        with open(os.path.join(src, "pq", "user.cc"), "w",
                  encoding="utf-8") as f:
            f.write('#include "common/dep_header.h"\n\n'
                    "namespace frugal {\n"
                    "inline unsigned UseDep(unsigned n)\n"
                    "{\n    return DepHelper(n);\n}\n"
                    "}  // namespace frugal\n")
        _, s1 = _run_cached(src, cache)
        check(s1 == (0, 2), f"cold run extracts both files {s1}")
        _, s2 = _run_cached(src, cache)
        check(s2 == (2, 0), f"warm run hits both files {s2}")
        with open(header, "a", encoding="utf-8") as f:
            f.write("// comment edit invalidating the closure\n")
        _, s3 = _run_cached(src, cache)
        check(s3 == (0, 2),
              f"header edit re-extracts header AND includer {s3}")
        _, s4 = _run_cached(src, cache)
        check(s4 == (2, 0), f"stable again after the edit {s4}")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def test_sarif_output():
    print("== SARIF output ==")
    src = os.path.join(FIXTURES, "bad", "src")
    proc = run_analyzer(src, "--hot", "FixtureHotLoop",
                        "--format", "sarif")
    check(proc.returncode == 1, "sarif run keeps the exit code")
    try:
        doc = json.loads(proc.stdout)
    except ValueError:
        doc = None
    check(doc is not None, "sarif output parses as JSON")
    if doc is None:
        return
    check(doc.get("version") == "2.1.0", "sarif version 2.1.0")
    runs = doc.get("runs") or [{}]
    results = runs[0].get("results", [])
    want = expected_findings(src)
    check(len(results) == len(want),
          f"one sarif result per finding ({len(results)})")
    rules = {r["id"] for r in
             runs[0].get("tool", {}).get("driver", {}).get("rules", [])}
    check(set(CHECK_IDS) <= rules, "sarif rules table covers all checks")
    check(all(r.get("ruleId") in rules and
              r.get("partialFingerprints", {}).get("frugalAnalyzeKey/v1")
              for r in results),
          "results carry ruleIds and stable fingerprints")


# A hand-written miniature of `clang++ -Xclang -ast-dump=json` output:
# one record with a ranked lock pair, a guarded member, an unguarded
# member, and a method whose body nests guards in inverted order, calls
# compare_exchange with a forbidden failure order, uses a relaxed load,
# allocates with `new`, release-stores an atomic member nobody loads,
# and waits on a CV while both guards are still active.
_FIXTURE_TU = "/ast/pq/fixture.cc"
_AST = {
    "kind": "TranslationUnitDecl",
    "inner": [{
        "kind": "CXXRecordDecl", "name": "AstFixture",
        "completeDefinition": True,
        "loc": {"file": _FIXTURE_TU, "line": 3},
        "inner": [
            {"kind": "FieldDecl", "name": "row_lock_",
             "loc": {"line": 4},
             "type": {"qualType": "frugal::Spinlock"},
             "inner": [{"kind": "CXXConstructExpr", "inner": [
                 {"kind": "DeclRefExpr",
                  "referencedDecl": {"name": "kTableRow"}}]}]},
            {"kind": "FieldDecl", "name": "lock_",
             "loc": {"line": 5},
             "type": {"qualType": "frugal::Spinlock"},
             "inner": [{"kind": "CXXConstructExpr", "inner": [
                 {"kind": "DeclRefExpr",
                  "referencedDecl": {"name": "kGEntry"}}]}]},
            {"kind": "FieldDecl", "name": "pending_",
             "loc": {"line": 6},
             "type": {"qualType": "unsigned int"},
             "inner": [{"kind": "GuardedByAttr", "inner": [
                 {"kind": "MemberExpr", "name": "lock_"}]}]},
            {"kind": "FieldDecl", "name": "bare_",
             "loc": {"line": 7},
             "type": {"qualType": "int"}},
            {"kind": "CXXMethodDecl", "name": "Bad",
             "loc": {"line": 8},
             "inner": [{"kind": "CompoundStmt", "inner": [
                 {"kind": "DeclStmt", "inner": [
                     {"kind": "VarDecl", "name": "g1",
                      "loc": {"line": 9},
                      "type": {"qualType": "frugal::SpinGuard"},
                      "inner": [{"kind": "DeclRefExpr",
                                 "referencedDecl":
                                     {"name": "row_lock_"}}]}]},
                 {"kind": "DeclStmt", "inner": [
                     {"kind": "VarDecl", "name": "g2",
                      "loc": {"line": 10},
                      "type": {"qualType": "frugal::SpinGuard"},
                      "inner": [{"kind": "MemberExpr",
                                 "name": "lock_"}]}]},
                 {"kind": "CXXNewExpr",
                  "range": {"begin": {"line": 11}}},
                 {"kind": "DeclRefExpr", "loc": {"line": 12},
                  "referencedDecl": {"name": "memory_order_relaxed"}},
                 {"kind": "CXXMemberCallExpr",
                  "range": {"begin": {"line": 13}},
                  "inner": [
                      {"kind": "MemberExpr",
                       "name": "compare_exchange_strong"},
                      {"kind": "DeclRefExpr",
                       "referencedDecl":
                           {"name": "memory_order_acq_rel"}},
                      {"kind": "DeclRefExpr",
                       "referencedDecl":
                           {"name": "memory_order_release"}}]},
                 {"kind": "CXXMemberCallExpr",
                  "range": {"begin": {"line": 15}},
                  "inner": [
                      {"kind": "MemberExpr", "name": "store",
                       "inner": [
                           {"kind": "MemberExpr", "name": "ready_",
                            "inner": [{"kind": "CXXThisExpr"}]}]},
                      {"kind": "DeclRefExpr",
                       "referencedDecl":
                           {"name": "memory_order_release"}}]},
                 {"kind": "CXXMemberCallExpr",
                  "range": {"begin": {"line": 16}},
                  "inner": [
                      {"kind": "MemberExpr", "name": "wait",
                       "inner": [
                           {"kind": "MemberExpr", "name": "cv_",
                            "inner": [{"kind": "CXXThisExpr"}]}]}]},
             ]}]},
            {"kind": "FieldDecl", "name": "ready_",
             "loc": {"line": 14},
             "type": {"qualType": "std::atomic<int>"}},
        ],
    }],
}


def test_clang_ast_walk():
    print("== synthetic clang AST walk ==")
    rel = "pq/fixture.cc"
    files = frontend_clang.collect_from_ast(
        _AST, lambda p: rel if p == _FIXTURE_TU else None)
    check(rel in files, "TU mapped through want_file()")
    ff = files[rel]
    members = {m.name: m for m in ff.classes[0].members} \
        if ff.classes else {}
    check(members.get("lock_") is not None and
          members["lock_"].lock_type == "Spinlock" and
          members["lock_"].lock_rank == "kGEntry",
          "FieldDecl -> lock member with ctor rank")
    check(members.get("pending_") is not None and
          members["pending_"].guarded_by == "lock_",
          "GuardedByAttr -> guarded_by")
    fns = [fn for fn in ff.functions if fn.name == "Bad"]
    check(bool(fns), "CXXMethodDecl with body -> FunctionFacts")
    fn = fns[0] if fns else None
    check(fn is not None and len(fn.nests) == 1 and
          fn.nests[0].inner == "lock_" and
          fn.nests[0].outers == ["row_lock_"] and
          fn.nests[0].line == 10,
          "guard VarDecls -> nested guard scopes")
    check(fn is not None and
          any(a.what == "new" and a.line == 11 for a in fn.allocs),
          "CXXNewExpr -> alloc site")
    check(ff.relaxed_lines == [12], "relaxed DeclRefExpr -> relaxed line")
    check(len(ff.cmpxchg) == 1 and ff.cmpxchg[0].success == "acq_rel" and
          ff.cmpxchg[0].failure == "release" and
          ff.cmpxchg[0].line == 13,
          "compare_exchange orders extracted")
    check(fn is not None and
          any(s.op == "store" and s.member == "ready_" and
              s.owner == "AstFixture" and s.order == "release" and
              s.line == 15 for s in ff.atomic_ops),
          "atomic member store -> AtomicOpSite with owner and order")
    check(fn is not None and
          any(b.what == "cv-wait" and b.line == 16 and
              "row_lock_" in b.held for b in fn.blocking),
          "CV wait -> BlockingSite with the active guards held")

    # The AST-sourced facts must drive the same checks end to end.
    project = ProjectFacts()
    project.files[rel] = ff
    got = {(d.check, d.line) for d in run_checks(project, CheckConfig())}
    for want in (("lock-rank", 10), ("tsa-coverage", 7),
                 ("atomics-relaxed", 12), ("atomics-cmpxchg", 13),
                 ("atomic-publish", 15), ("spin-blocking", 16)):
        check(want in got, f"run_checks on AST facts reports {want}")


def test_lock_ranks_in_sync():
    print("== LOCK_RANKS vs src/common/lock_rank.h ==")
    path = os.path.join(REPO, "src", "common", "lock_rank.h")
    with open(path, encoding="utf-8") as f:
        declared = dict(re.findall(r"(k\w+)\s*=\s*(\d+)", f.read()))
    for name, val in sorted(LOCK_RANKS.items()):
        check(declared.get(name) == str(val),
              f"LockRank::{name} == {val}")
    check(set(declared) == set(LOCK_RANKS),
          "no enumerator missing from either side")


def test_lint_atomics_shim():
    print("== lint_atomics shim ==")
    shim = os.path.join(SCRIPTS, "lint_atomics.py")
    bad_pq = os.path.join(FIXTURES, "bad", "src", "pq")
    # Directory walks deliberately skip the fixture corpus (check.sh
    # lints `tests`); explicit file arguments bypass the skip.
    bad = subprocess.run(
        [sys.executable, shim,
         os.path.join(bad_pq, "unjustified_relaxed.cc"),
         os.path.join(bad_pq, "raw_atomic.h")],
        capture_output=True, text=True)
    check(bad.returncode == 1, "bad fixture files: exit 1")
    check("[relaxed]" in bad.stderr and "[raw-atomic]" in bad.stderr,
          "bad fixture files: both legacy rule names fire")
    skipped = subprocess.run(
        [sys.executable, shim, os.path.join(FIXTURES, "bad")],
        capture_output=True, text=True)
    check(skipped.returncode == 0,
          "fixture corpus skipped on directory walks")
    clean = subprocess.run(
        [sys.executable, shim,
         os.path.join(FIXTURES, "clean", "src", "pq", "all_clean.cc")],
        capture_output=True, text=True)
    check(clean.returncode == 0, "clean fixture file: exit 0")


def test_cli_surface():
    print("== CLI surface ==")
    analyzer = os.path.join(SCRIPTS, "frugal_analyze")
    ex = subprocess.run([sys.executable, analyzer, "--explain",
                         "lock-rank"], capture_output=True, text=True)
    check(ex.returncode == 0 and "lock-rank" in ex.stdout,
          "--explain lock-rank")
    bogus = subprocess.run([sys.executable, analyzer, "--explain",
                            "bogus"], capture_output=True, text=True)
    check(bogus.returncode == 2, "--explain bogus exits 2 (usage)")
    ls = subprocess.run([sys.executable, analyzer, "--list-checks"],
                        capture_output=True, text=True)
    check(ls.returncode == 0 and
          all(cid in ls.stdout for cid in CHECK_IDS),
          "--list-checks names every check")


def main():
    test_fixtures()
    test_deep_call_path()
    test_clang_ast_walk()
    test_lock_ranks_in_sync()
    test_cache_invalidation()
    test_sarif_output()
    test_lint_atomics_shim()
    test_cli_surface()
    if failures:
        print(f"\n{len(failures)} analyze subtest(s) FAILED")
        return 1
    print("\nall analyze subtests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
