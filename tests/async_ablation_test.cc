/**
 * The "why synchronous" ablation (§3): with the P²F gate disabled,
 * training becomes asynchronous — readers observe parameters with
 * unflushed updates — and the result diverges from the synchronous
 * oracle. A flush-delay fault injection makes the staleness
 * deterministic. Also tests the AUC metric the paper cites as the
 * accuracy currency of CTR models.
 */
#include <gtest/gtest.h>

#include "common/distribution.h"
#include "data/dataset_spec.h"
#include "models/auc.h"
#include "models/dlrm.h"
#include "runtime/frugal_engine.h"
#include "runtime/microtask.h"
#include "runtime/oracle.h"

namespace frugal {
namespace {

Trace
HotKeyTrace(std::uint32_t n_gpus, std::size_t steps)
{
    // Every GPU reads and updates the same hot key every step, plus a
    // private cold key: the hot key's flush is always urgent.
    std::vector<StepKeys> all(steps);
    for (std::size_t s = 0; s < steps; ++s) {
        all[s].per_gpu.resize(n_gpus);
        for (GpuId g = 0; g < n_gpus; ++g) {
            all[s].per_gpu[g] = {0, 1 + g + 16 * (s % 4)};
        }
    }
    return Trace(std::move(all), 128, n_gpus);
}

EngineConfig
SlowFlushConfig()
{
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 4;
    config.key_space = 128;
    config.flush_threads = 1;
    config.flush_batch = 1;
    config.flush_delay_us = 300;  // flushing far slower than stepping
    config.audit_consistency = true;
    return config;
}

TEST(AsyncAblationTest, GateKeepsSlowFlushConsistent)
{
    const EngineConfig config = SlowFlushConfig();
    const Trace trace = HotKeyTrace(2, 30);
    const GradFn task = MakeLinearGradTask();
    FrugalEngine engine(config);
    const RunReport report = engine.Run(trace, task);
    // The gate turns the slow flusher into stall time, never staleness.
    EXPECT_EQ(report.audit_violations, 0u);
    EXPECT_GT(report.stall_seconds_total, 0.0);

    EmbeddingTableConfig tc;
    tc.key_space = config.key_space;
    tc.dim = config.dim;
    tc.init_seed = config.init_seed;
    tc.init_scale = config.init_scale;
    HostEmbeddingTable oracle_table(tc);
    auto opt = MakeOptimizer("sgd", config.learning_rate, 128, 4);
    RunOracle(oracle_table, *opt, trace, task);
    EXPECT_TRUE(TablesBitEqual(engine.table(), oracle_table));
}

TEST(AsyncAblationTest, DisabledGateReadsStaleParameters)
{
    EngineConfig config = SlowFlushConfig();
    config.disable_gate_unsafe = true;
    const Trace trace = HotKeyTrace(2, 30);
    const GradFn task = MakeLinearGradTask();
    FrugalEngine engine(config);
    const RunReport report = engine.Run(trace, task);
    // Asynchronous mode: the auditor must observe invariant-(2)
    // violations (reads of parameters with pending updates)...
    EXPECT_GT(report.audit_violations, 0u);
    // ...yet the pipeline still conserves updates.
    EXPECT_EQ(report.updates_applied, report.updates_emitted);

    // And the trained model diverges from the synchronous oracle —
    // the accuracy cost §3 cites.
    EmbeddingTableConfig tc;
    tc.key_space = config.key_space;
    tc.dim = config.dim;
    tc.init_seed = config.init_seed;
    tc.init_scale = config.init_scale;
    HostEmbeddingTable oracle_table(tc);
    auto opt = MakeOptimizer("sgd", config.learning_rate, 128, 4);
    RunOracle(oracle_table, *opt, trace, task);
    EXPECT_FALSE(TablesBitEqual(engine.table(), oracle_table));
}

TEST(AucTest, PerfectAndInvertedClassifiers)
{
    const std::vector<float> labels = {0, 0, 1, 1};
    EXPECT_DOUBLE_EQ(ComputeAuc({0.1f, 0.2f, 0.8f, 0.9f}, labels), 1.0);
    EXPECT_DOUBLE_EQ(ComputeAuc({0.9f, 0.8f, 0.2f, 0.1f}, labels), 0.0);
}

TEST(AucTest, RandomScoresNearHalf)
{
    Rng rng(3);
    std::vector<float> scores, labels;
    for (int i = 0; i < 20000; ++i) {
        scores.push_back(static_cast<float>(rng.NextDouble()));
        labels.push_back(static_cast<float>(rng.NextBounded(2)));
    }
    EXPECT_NEAR(ComputeAuc(scores, labels), 0.5, 0.02);
}

TEST(AucTest, TiesGetMeanRank)
{
    // All scores equal ⇒ AUC exactly 0.5 regardless of labels.
    EXPECT_DOUBLE_EQ(
        ComputeAuc({0.5f, 0.5f, 0.5f, 0.5f}, {0, 1, 0, 1}), 0.5);
}

TEST(AucTest, DegenerateSingleClass)
{
    EXPECT_DOUBLE_EQ(ComputeAuc({0.1f, 0.9f}, {1, 1}), 0.5);
    EXPECT_DOUBLE_EQ(ComputeAuc({0.1f, 0.9f}, {0, 0}), 0.5);
}

TEST(AucTest, DlrmTrainingImprovesAuc)
{
    const DatasetSpec spec = DatasetByName("Avazu").Scaled(100000.0);
    RecDatasetGenerator train_gen(spec, 50);
    const std::uint32_t n_gpus = 2;
    const DlrmWorkload workload =
        DlrmWorkload::Build(train_gen, /*steps=*/300, n_gpus, 16);

    EngineConfig config;
    config.n_gpus = n_gpus;
    config.dim = spec.embedding_dim;
    config.key_space = train_gen.key_space();
    config.flush_threads = 2;
    config.learning_rate = 0.3f;

    DlrmConfig model_config;
    model_config.n_features = train_gen.n_features();
    model_config.dim = spec.embedding_dim;
    model_config.hidden = {32, 16};
    model_config.n_gpus = n_gpus;
    model_config.dense_learning_rate = 0.2f;
    DlrmModel model(model_config);

    FrugalEngine engine(config);
    RecDatasetGenerator eval_gen(spec, 51);  // held-out stream
    const double auc_before =
        model.EvaluateAuc(engine.table(), eval_gen, 3000);
    engine.Run(workload.trace, model.BindGradFn(workload),
               model.BindStepHook());
    RecDatasetGenerator eval_gen2(spec, 51);
    const double auc_after =
        model.EvaluateAuc(engine.table(), eval_gen2, 3000);

    EXPECT_NEAR(auc_before, 0.5, 0.06);  // untrained ≈ random
    EXPECT_GT(auc_after, auc_before + 0.08)
        << "before " << auc_before << " after " << auc_after;
}

}  // namespace
}  // namespace frugal
