/** Tests for the per-GPU LRU embedding cache and key ownership. */
#include "cache/gpu_cache.h"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <thread>
#include <vector>

namespace frugal {
namespace {

std::vector<float>
RowOf(float v, std::size_t dim = 4)
{
    return std::vector<float>(dim, v);
}

TEST(GpuCacheTest, MissThenHit)
{
    GpuCache cache(4, 4);
    std::vector<float> out(4);
    EXPECT_FALSE(cache.TryGet(1, out.data()));
    cache.Put(1, RowOf(1.5f).data());
    ASSERT_TRUE(cache.TryGet(1, out.data()));
    EXPECT_EQ(out[0], 1.5f);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(GpuCacheTest, EvictsLruWhenFull)
{
    GpuCache cache(2, 4);
    std::vector<float> out(4);
    cache.Put(1, RowOf(1).data());
    cache.Put(2, RowOf(2).data());
    ASSERT_TRUE(cache.TryGet(1, out.data()));  // 1 becomes MRU
    const Key evicted = cache.Put(3, RowOf(3).data());
    EXPECT_EQ(evicted, 2u);  // 2 was LRU
    EXPECT_TRUE(cache.Contains(1));
    EXPECT_FALSE(cache.Contains(2));
    EXPECT_TRUE(cache.Contains(3));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(GpuCacheTest, PutExistingOverwritesWithoutEviction)
{
    GpuCache cache(2, 4);
    cache.Put(1, RowOf(1).data());
    const Key evicted = cache.Put(1, RowOf(9).data());
    EXPECT_EQ(evicted, kInvalidKey);
    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(1, out.data()));
    EXPECT_EQ(out[0], 9.0f);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(GpuCacheTest, UpdateIfPresent)
{
    GpuCache cache(2, 4);
    EXPECT_FALSE(cache.UpdateIfPresent(5, RowOf(5).data()));
    cache.Put(5, RowOf(1).data());
    EXPECT_TRUE(cache.UpdateIfPresent(5, RowOf(7).data()));
    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(5, out.data()));
    EXPECT_EQ(out[0], 7.0f);
    EXPECT_EQ(cache.stats().flush_writes, 1u);
}

TEST(GpuCacheTest, UpdateIfPresentDoesNotTouchLru)
{
    GpuCache cache(2, 4);
    cache.Put(1, RowOf(1).data());
    cache.Put(2, RowOf(2).data());
    // 1 is LRU; a flush write to 1 must NOT promote it.
    cache.UpdateIfPresent(1, RowOf(9).data());
    const Key evicted = cache.Put(3, RowOf(3).data());
    EXPECT_EQ(evicted, 1u);
}

TEST(GpuCacheTest, ModelEquivalenceAgainstReferenceLru)
{
    // Randomised trace checked against a simple map+list reference model.
    constexpr std::size_t kCapacity = 16;
    GpuCache cache(kCapacity, 2);
    std::list<Key> ref_lru;  // front = MRU
    std::map<Key, float> ref;

    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        const Key k = rng.NextBounded(64);
        std::vector<float> out(2);
        const bool hit = cache.TryGet(k, out.data());
        const bool ref_hit = ref.count(k) > 0;
        ASSERT_EQ(hit, ref_hit) << "op " << i << " key " << k;
        if (hit) {
            ASSERT_EQ(out[0], ref[k]);
            ref_lru.remove(k);
            ref_lru.push_front(k);
        } else {
            const float v = static_cast<float>(i);
            cache.Put(k, RowOf(v, 2).data());
            if (ref.size() == kCapacity) {
                const Key victim = ref_lru.back();
                ref_lru.pop_back();
                ref.erase(victim);
            }
            ref.emplace(k, v);
            ref_lru.push_front(k);
        }
    }
}

TEST(GpuCacheTest, ConcurrentReaderAndFlushWriter)
{
    GpuCache cache(64, 4);
    for (Key k = 0; k < 64; ++k)
        cache.Put(k, RowOf(static_cast<float>(k)).data());

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        int round = 0;
        while (!stop) {
            for (Key k = 0; k < 64; ++k)
                cache.UpdateIfPresent(k, RowOf(static_cast<float>(round))
                                             .data());
            ++round;
        }
    });
    std::vector<float> out(4);
    for (int i = 0; i < 100000; ++i) {
        const Key k = static_cast<Key>(i % 64);
        ASSERT_TRUE(cache.TryGet(k, out.data()));
        // Row must be internally consistent (all lanes equal).
        ASSERT_EQ(out[0], out[3]);
    }
    stop = true;
    writer.join();
}

TEST(GpuCacheWarmTest, WarmBatchInsertsColdWithoutPromotingHotRows)
{
    GpuCache cache(4, 4);
    cache.Put(1, RowOf(1).data());
    cache.Put(2, RowOf(2).data());  // MRU: 2, LRU: 1

    const Key keys[] = {5, 6};
    const Step hints[] = {10, 11};
    std::size_t gathered = 0;
    const std::size_t warmed = cache.WarmBatch(
        keys, hints, 2, [&](const Key *fill, std::size_t m, float *rows) {
            gathered = m;
            for (std::size_t j = 0; j < m; ++j)
                for (std::size_t d = 0; d < 4; ++d)
                    rows[j * 4 + d] = static_cast<float>(fill[j]);
        });
    EXPECT_EQ(warmed, 2u);
    EXPECT_EQ(gathered, 2u);
    EXPECT_TRUE(cache.Contains(5));
    EXPECT_TRUE(cache.Contains(6));
    EXPECT_EQ(cache.stats().warm_inserts, 2u);

    // Warmed rows entered at the cold end: an unhinted insert into the
    // now-full cache evicts a warmed row, not the hot residents.
    const Key evicted = cache.Put(7, RowOf(7).data());
    EXPECT_TRUE(evicted == 5u || evicted == 6u);
    EXPECT_TRUE(cache.Contains(1));
    EXPECT_TRUE(cache.Contains(2));

    // First trainer hit on a warmed row counts once as a warm hit.
    std::vector<float> out(4);
    const Key survivor = evicted == 5u ? 6u : 5u;
    ASSERT_TRUE(cache.TryGet(survivor, out.data()));
    EXPECT_EQ(out[0], static_cast<float>(survivor));
    ASSERT_TRUE(cache.TryGet(survivor, out.data()));
    EXPECT_EQ(cache.stats().warm_hits, 1u);
}

TEST(GpuCacheWarmTest, WarmSkipsDeadOnArrivalAndResidents)
{
    GpuCache cache(4, 4);
    cache.Put(1, RowOf(1).data());
    const Key keys[] = {1, 2};
    const Step hints[] = {5, GpuCache::kNoFutureUse};
    bool gather_ran = false;
    const std::size_t warmed = cache.WarmBatch(
        keys, hints, 2,
        [&](const Key *, std::size_t, float *) { gather_ran = true; });
    // Key 1 is resident (hint refresh only); key 2 has no future
    // reader — warming it would be a wasted gather and a wasted slot.
    EXPECT_EQ(warmed, 0u);
    EXPECT_FALSE(gather_ran);
    EXPECT_FALSE(cache.Contains(2));
    EXPECT_EQ(cache.stats().warm_inserts, 0u);
}

TEST(GpuCacheWarmTest, StaleWarmCommitYieldsToFresherFlushWrite)
{
    GpuCache cache(4, 4);
    const Key keys[] = {9};
    const Step hints[] = {3};
    GpuCache::WarmPending pending[1];
    ASSERT_EQ(cache.WarmBegin(keys, hints, 1, pending), 1u);

    // Mid-warm slots are invisible to readers.
    std::vector<float> out(4);
    EXPECT_FALSE(cache.TryGet(9, out.data()));

    // A flush lands the committed value between the phases: it both
    // completes the slot and bumps the fill stamp.
    EXPECT_TRUE(cache.UpdateIfPresent(9, RowOf(42).data()));

    // The gather's (now stale) host row must lose to the flush value.
    cache.WarmCommit(keys, pending, 1, RowOf(-1).data());
    ASSERT_TRUE(cache.TryGet(9, out.data()));
    EXPECT_EQ(out[0], 42.0f);
}

TEST(GpuCacheWarmTest, WarmOneUpdatesResidentsAndInsertsCold)
{
    GpuCache cache(2, 4);
    cache.Put(1, RowOf(1).data());
    // Resident: refresh in place (a flush write, not a warm insert).
    EXPECT_TRUE(cache.WarmOne(1, RowOf(7).data(), 4));
    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(1, out.data()));
    EXPECT_EQ(out[0], 7.0f);
    EXPECT_EQ(cache.stats().warm_inserts, 0u);
    // Absent: cold-end insert, immediately readable.
    EXPECT_TRUE(cache.WarmOne(2, RowOf(8).data(), 5));
    ASSERT_TRUE(cache.TryGet(2, out.data()));
    EXPECT_EQ(out[0], 8.0f);
    EXPECT_EQ(cache.stats().warm_inserts, 1u);
}

TEST(GpuCacheWarmTest, EvictIfDeadReclaimsWithoutWriteback)
{
    GpuCache cache(2, 4);
    cache.Put(1, RowOf(1).data());
    EXPECT_TRUE(cache.EvictIfDead(1));
    EXPECT_FALSE(cache.Contains(1));
    EXPECT_FALSE(cache.EvictIfDead(1));  // already gone
    EXPECT_EQ(cache.stats().dead_evictions, 1u);
    EXPECT_EQ(cache.stats().evictions, 0u);  // not a capacity eviction
    // The freed slot is immediately reusable.
    cache.Put(2, RowOf(2).data());
    cache.Put(3, RowOf(3).data());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(GpuCacheBeladyTest, EvictsFarthestNextUseNotLru)
{
    GpuCache cache(2, 4);
    cache.SetEvictionHorizon(50);
    cache.Put(1, RowOf(1).data(), /*next_use=*/10);
    cache.Put(2, RowOf(2).data(), /*next_use=*/100);
    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(2, out.data(), 100));  // LRU tail is now 1

    // Plain LRU would evict key 1 — but key 1 is needed at step 10 and
    // key 2 not until step 100, beyond the horizon: Belady evicts 2.
    const Key evicted = cache.Put(3, RowOf(3).data(), /*next_use=*/20);
    EXPECT_EQ(evicted, 2u);
    EXPECT_TRUE(cache.Contains(1));
    EXPECT_TRUE(cache.Contains(3));
}

TEST(GpuCacheBeladyTest, AdmissionDeclinedWhenIncomingIsBestVictim)
{
    GpuCache cache(1, 4);
    cache.Put(1, RowOf(1).data(), /*next_use=*/5);
    // Key 2 is needed later than every resident: inserting it would
    // evict a sooner-needed row only for key 2 to be the next victim.
    const Key evicted = cache.Put(2, RowOf(2).data(), /*next_use=*/100);
    EXPECT_EQ(evicted, kInvalidKey);
    EXPECT_TRUE(cache.Contains(1));
    EXPECT_FALSE(cache.Contains(2));
    // The reverse direction admits: sooner-needed keys displace later.
    const Key evicted2 = cache.Put(3, RowOf(3).data(), /*next_use=*/2);
    EXPECT_EQ(evicted2, 1u);
    EXPECT_TRUE(cache.Contains(3));
}

TEST(GpuCacheBeladyTest, HintedTryGetRefreshesEvictionOrder)
{
    GpuCache cache(2, 4);
    cache.Put(1, RowOf(1).data(), /*next_use=*/100);
    cache.Put(2, RowOf(2).data(), /*next_use=*/4);
    // Key 1's next use arrives: the trainer's hinted lookup rewrites it
    // to the post-read next use (soon), flipping the victim choice.
    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(1, out.data(), /*next_use=*/3));
    ASSERT_TRUE(cache.TryGet(2, out.data(), /*next_use=*/4));
    const Key evicted = cache.Put(5, RowOf(5).data(), /*next_use=*/2);
    // Both residents are needed at 3 and 4; farthest next use is 4.
    EXPECT_EQ(evicted, 2u);
}

TEST(KeyOwnershipTest, PartitionIsCompleteAndStable)
{
    KeyOwnership owners(4);
    std::vector<int> counts(4, 0);
    for (Key k = 0; k < 100000; ++k) {
        const GpuId owner = owners.OwnerOf(k);
        ASSERT_LT(owner, 4u);
        counts[owner]++;
        ASSERT_EQ(owner, owners.OwnerOf(k));  // stable
    }
    for (int c : counts)  // roughly balanced
        EXPECT_NEAR(c, 25000, 1000);
}

TEST(KeyOwnershipTest, SingleGpuOwnsEverything)
{
    KeyOwnership owners(1);
    for (Key k = 0; k < 1000; ++k)
        ASSERT_EQ(owners.OwnerOf(k), 0u);
}

}  // namespace
}  // namespace frugal
