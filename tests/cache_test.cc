/** Tests for the per-GPU embedding cache (tiered frequency-aware
 *  replacement + legacy LRU mode) and key ownership. */
#include "cache/gpu_cache.h"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <thread>
#include <vector>

namespace frugal {
namespace {

std::vector<float>
RowOf(float v, std::size_t dim = 4)
{
    return std::vector<float>(dim, v);
}

/** The pre-§14 single-list LRU: segments and admission off. The tests
 *  below that assert classic LRU victim order request this explicitly;
 *  everything else runs the (default) tiered policy. */
GpuCacheOptions
LegacyLruOptions()
{
    GpuCacheOptions options;
    options.segmented = false;
    options.freq_admission = false;
    return options;
}

TEST(GpuCacheTest, MissThenHit)
{
    GpuCache cache(4, 4);
    std::vector<float> out(4);
    EXPECT_FALSE(cache.TryGet(1, out.data()));
    cache.Put(1, RowOf(1.5f).data());
    ASSERT_TRUE(cache.TryGet(1, out.data()));
    EXPECT_EQ(out[0], 1.5f);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(GpuCacheTest, EvictsLruWhenFull)
{
    GpuCache cache(2, 4, LegacyLruOptions());
    std::vector<float> out(4);
    cache.Put(1, RowOf(1).data());
    cache.Put(2, RowOf(2).data());
    ASSERT_TRUE(cache.TryGet(1, out.data()));  // 1 becomes MRU
    const Key evicted = cache.Put(3, RowOf(3).data());
    EXPECT_EQ(evicted, 2u);  // 2 was LRU
    EXPECT_TRUE(cache.Contains(1));
    EXPECT_FALSE(cache.Contains(2));
    EXPECT_TRUE(cache.Contains(3));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(GpuCacheTest, PutExistingOverwritesWithoutEviction)
{
    GpuCache cache(2, 4);
    cache.Put(1, RowOf(1).data());
    const Key evicted = cache.Put(1, RowOf(9).data());
    EXPECT_EQ(evicted, kInvalidKey);
    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(1, out.data()));
    EXPECT_EQ(out[0], 9.0f);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(GpuCacheTest, UpdateIfPresent)
{
    GpuCache cache(2, 4);
    EXPECT_FALSE(cache.UpdateIfPresent(5, RowOf(5).data()));
    cache.Put(5, RowOf(1).data());
    EXPECT_TRUE(cache.UpdateIfPresent(5, RowOf(7).data()));
    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(5, out.data()));
    EXPECT_EQ(out[0], 7.0f);
    EXPECT_EQ(cache.stats().flush_writes, 1u);
}

TEST(GpuCacheTest, UpdateIfPresentDoesNotTouchLru)
{
    GpuCache cache(2, 4, LegacyLruOptions());
    cache.Put(1, RowOf(1).data());
    cache.Put(2, RowOf(2).data());
    // 1 is LRU; a flush write to 1 must NOT promote it.
    cache.UpdateIfPresent(1, RowOf(9).data());
    const Key evicted = cache.Put(3, RowOf(3).data());
    EXPECT_EQ(evicted, 1u);
}

TEST(GpuCacheTest, ModelEquivalenceAgainstReferenceLru)
{
    // Randomised trace checked against a simple map+list reference model.
    constexpr std::size_t kCapacity = 16;
    GpuCache cache(kCapacity, 2, LegacyLruOptions());
    std::list<Key> ref_lru;  // front = MRU
    std::map<Key, float> ref;

    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        const Key k = rng.NextBounded(64);
        std::vector<float> out(2);
        const bool hit = cache.TryGet(k, out.data());
        const bool ref_hit = ref.count(k) > 0;
        ASSERT_EQ(hit, ref_hit) << "op " << i << " key " << k;
        if (hit) {
            ASSERT_EQ(out[0], ref[k]);
            ref_lru.remove(k);
            ref_lru.push_front(k);
        } else {
            const float v = static_cast<float>(i);
            cache.Put(k, RowOf(v, 2).data());
            if (ref.size() == kCapacity) {
                const Key victim = ref_lru.back();
                ref_lru.pop_back();
                ref.erase(victim);
            }
            ref.emplace(k, v);
            ref_lru.push_front(k);
        }
    }
}

TEST(GpuCacheTest, ConcurrentReaderAndFlushWriter)
{
    GpuCache cache(64, 4);
    for (Key k = 0; k < 64; ++k)
        cache.Put(k, RowOf(static_cast<float>(k)).data());

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        int round = 0;
        while (!stop) {
            for (Key k = 0; k < 64; ++k)
                cache.UpdateIfPresent(k, RowOf(static_cast<float>(round))
                                             .data());
            ++round;
        }
    });
    std::vector<float> out(4);
    for (int i = 0; i < 100000; ++i) {
        const Key k = static_cast<Key>(i % 64);
        ASSERT_TRUE(cache.TryGet(k, out.data()));
        // Row must be internally consistent (all lanes equal).
        ASSERT_EQ(out[0], out[3]);
    }
    stop = true;
    writer.join();
}

TEST(GpuCacheWarmTest, WarmBatchInsertsColdWithoutPromotingHotRows)
{
    // Legacy mode: the unhinted Put below must evict in plain LRU
    // order (the admission gate would decline the never-seen key 7).
    GpuCache cache(4, 4, LegacyLruOptions());
    cache.Put(1, RowOf(1).data());
    cache.Put(2, RowOf(2).data());  // MRU: 2, LRU: 1

    const Key keys[] = {5, 6};
    const Step hints[] = {10, 11};
    std::size_t gathered = 0;
    const std::size_t warmed = cache.WarmBatch(
        keys, hints, 2, [&](const Key *fill, std::size_t m, float *rows) {
            gathered = m;
            for (std::size_t j = 0; j < m; ++j)
                for (std::size_t d = 0; d < 4; ++d)
                    rows[j * 4 + d] = static_cast<float>(fill[j]);
        });
    EXPECT_EQ(warmed, 2u);
    EXPECT_EQ(gathered, 2u);
    EXPECT_TRUE(cache.Contains(5));
    EXPECT_TRUE(cache.Contains(6));
    EXPECT_EQ(cache.stats().warm_inserts, 2u);

    // Warmed rows entered at the cold end: an unhinted insert into the
    // now-full cache evicts a warmed row, not the hot residents.
    const Key evicted = cache.Put(7, RowOf(7).data());
    EXPECT_TRUE(evicted == 5u || evicted == 6u);
    EXPECT_TRUE(cache.Contains(1));
    EXPECT_TRUE(cache.Contains(2));

    // First trainer hit on a warmed row counts once as a warm hit.
    std::vector<float> out(4);
    const Key survivor = evicted == 5u ? 6u : 5u;
    ASSERT_TRUE(cache.TryGet(survivor, out.data()));
    EXPECT_EQ(out[0], static_cast<float>(survivor));
    ASSERT_TRUE(cache.TryGet(survivor, out.data()));
    EXPECT_EQ(cache.stats().warm_hits, 1u);
}

TEST(GpuCacheWarmTest, WarmSkipsDeadOnArrivalAndResidents)
{
    GpuCache cache(4, 4);
    cache.Put(1, RowOf(1).data());
    const Key keys[] = {1, 2};
    const Step hints[] = {5, GpuCache::kNoFutureUse};
    bool gather_ran = false;
    const std::size_t warmed = cache.WarmBatch(
        keys, hints, 2,
        [&](const Key *, std::size_t, float *) { gather_ran = true; });
    // Key 1 is resident (hint refresh only); key 2 has no future
    // reader — warming it would be a wasted gather and a wasted slot.
    EXPECT_EQ(warmed, 0u);
    EXPECT_FALSE(gather_ran);
    EXPECT_FALSE(cache.Contains(2));
    EXPECT_EQ(cache.stats().warm_inserts, 0u);
}

TEST(GpuCacheWarmTest, StaleWarmCommitYieldsToFresherFlushWrite)
{
    GpuCache cache(4, 4);
    const Key keys[] = {9};
    const Step hints[] = {3};
    GpuCache::WarmPending pending[1];
    ASSERT_EQ(cache.WarmBegin(keys, hints, 1, pending), 1u);

    // Mid-warm slots are invisible to readers.
    std::vector<float> out(4);
    EXPECT_FALSE(cache.TryGet(9, out.data()));

    // A flush lands the committed value between the phases: it both
    // completes the slot and bumps the fill stamp.
    EXPECT_TRUE(cache.UpdateIfPresent(9, RowOf(42).data()));

    // The gather's (now stale) host row must lose to the flush value.
    cache.WarmCommit(keys, pending, 1, RowOf(-1).data());
    ASSERT_TRUE(cache.TryGet(9, out.data()));
    EXPECT_EQ(out[0], 42.0f);
}

TEST(GpuCacheWarmTest, WarmOneUpdatesResidentsAndInsertsCold)
{
    GpuCache cache(2, 4);
    cache.Put(1, RowOf(1).data());
    // Resident: refresh in place (a flush write, not a warm insert).
    EXPECT_TRUE(cache.WarmOne(1, RowOf(7).data(), 4));
    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(1, out.data()));
    EXPECT_EQ(out[0], 7.0f);
    EXPECT_EQ(cache.stats().warm_inserts, 0u);
    // Absent: cold-end insert, immediately readable.
    EXPECT_TRUE(cache.WarmOne(2, RowOf(8).data(), 5));
    ASSERT_TRUE(cache.TryGet(2, out.data()));
    EXPECT_EQ(out[0], 8.0f);
    EXPECT_EQ(cache.stats().warm_inserts, 1u);
}

TEST(GpuCacheWarmTest, EvictIfDeadReclaimsWithoutWriteback)
{
    GpuCache cache(2, 4);
    cache.Put(1, RowOf(1).data());
    EXPECT_TRUE(cache.EvictIfDead(1));
    EXPECT_FALSE(cache.Contains(1));
    EXPECT_FALSE(cache.EvictIfDead(1));  // already gone
    EXPECT_EQ(cache.stats().dead_evictions, 1u);
    EXPECT_EQ(cache.stats().evictions, 0u);  // not a capacity eviction
    // The freed slot is immediately reusable.
    cache.Put(2, RowOf(2).data());
    cache.Put(3, RowOf(3).data());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(GpuCacheBeladyTest, EvictsFarthestNextUseNotLru)
{
    GpuCache cache(2, 4);
    cache.SetEvictionHorizon(50);
    cache.Put(1, RowOf(1).data(), /*next_use=*/10);
    cache.Put(2, RowOf(2).data(), /*next_use=*/100);
    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(2, out.data(), 100));  // LRU tail is now 1

    // Plain LRU would evict key 1 — but key 1 is needed at step 10 and
    // key 2 not until step 100, beyond the horizon: Belady evicts 2.
    const Key evicted = cache.Put(3, RowOf(3).data(), /*next_use=*/20);
    EXPECT_EQ(evicted, 2u);
    EXPECT_TRUE(cache.Contains(1));
    EXPECT_TRUE(cache.Contains(3));
}

TEST(GpuCacheBeladyTest, AdmissionDeclinedWhenIncomingIsBestVictim)
{
    GpuCache cache(1, 4);
    cache.Put(1, RowOf(1).data(), /*next_use=*/5);
    // Key 2 is needed later than every resident: inserting it would
    // evict a sooner-needed row only for key 2 to be the next victim.
    const Key evicted = cache.Put(2, RowOf(2).data(), /*next_use=*/100);
    EXPECT_EQ(evicted, kInvalidKey);
    EXPECT_TRUE(cache.Contains(1));
    EXPECT_FALSE(cache.Contains(2));
    // The reverse direction admits: sooner-needed keys displace later.
    const Key evicted2 = cache.Put(3, RowOf(3).data(), /*next_use=*/2);
    EXPECT_EQ(evicted2, 1u);
    EXPECT_TRUE(cache.Contains(3));
}

TEST(GpuCacheBeladyTest, HintedTryGetRefreshesEvictionOrder)
{
    GpuCache cache(2, 4);
    cache.Put(1, RowOf(1).data(), /*next_use=*/100);
    cache.Put(2, RowOf(2).data(), /*next_use=*/4);
    // Key 1's next use arrives: the trainer's hinted lookup rewrites it
    // to the post-read next use (soon), flipping the victim choice.
    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(1, out.data(), /*next_use=*/3));
    ASSERT_TRUE(cache.TryGet(2, out.data(), /*next_use=*/4));
    const Key evicted = cache.Put(5, RowOf(5).data(), /*next_use=*/2);
    // Both residents are needed at 3 and 4; farthest next use is 4.
    EXPECT_EQ(evicted, 2u);
}

TEST(GpuCacheTieredTest, PromotionOnRereferenceAndSegmentCounters)
{
    // Capacity 4 → hot budget 3 (0.8 × 4 floored, min 1).
    GpuCache cache(4, 4);
    cache.Put(1, RowOf(1).data());
    cache.Put(2, RowOf(2).data());
    EXPECT_EQ(cache.hot_size(), 0u);  // inserts start on probation

    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(1, out.data()));  // re-reference: promote
    EXPECT_EQ(cache.hot_size(), 1u);
    ASSERT_TRUE(cache.TryGet(1, out.data()));  // hot hit: stays hot
    EXPECT_EQ(cache.hot_size(), 1u);

    const GpuCacheStats stats = cache.stats();
    EXPECT_EQ(stats.promotions, 1u);
    EXPECT_EQ(stats.cold_hits, 1u);
    EXPECT_EQ(stats.hot_hits, 1u);
    EXPECT_EQ(stats.hits, stats.hot_hits + stats.cold_hits);
}

TEST(GpuCacheTieredTest, HotOverflowDemotesLeastRecentHotRow)
{
    // Capacity 2 → hot budget 1: promoting a second row must demote
    // the first back to probation.
    GpuCache cache(2, 4);
    cache.Put(1, RowOf(1).data());
    cache.Put(2, RowOf(2).data());
    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(1, out.data()));
    ASSERT_TRUE(cache.TryGet(2, out.data()));
    EXPECT_EQ(cache.hot_size(), 1u);
    EXPECT_EQ(cache.stats().promotions, 2u);
    EXPECT_EQ(cache.stats().demotions, 1u);
}

TEST(GpuCacheTieredTest, AdmissionGateBlocksOneHitWonders)
{
    GpuCache cache(2, 4);
    cache.Put(1, RowOf(1).data());
    cache.Put(2, RowOf(2).data());

    // Key 5 has never been looked up: at full capacity its estimated
    // frequency (0) does not beat the cold-tail victim's, so the
    // insert bounces — and loses nothing, the cache is write-through.
    EXPECT_EQ(cache.Put(5, RowOf(5).data()), kInvalidKey);
    EXPECT_FALSE(cache.Contains(5));
    EXPECT_TRUE(cache.Contains(1));
    EXPECT_TRUE(cache.Contains(2));
    EXPECT_EQ(cache.stats().admission_declines, 1u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    // After the access stream proves key 5 (two recorded misses), it
    // out-ranks the never-referenced victim and is admitted.
    std::vector<float> out(4);
    EXPECT_FALSE(cache.TryGet(5, out.data()));
    EXPECT_FALSE(cache.TryGet(5, out.data()));
    EXPECT_NE(cache.Put(5, RowOf(5).data()), kInvalidKey);
    EXPECT_TRUE(cache.Contains(5));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(GpuCacheTieredTest, EvictionTakesProbationBeforeProtected)
{
    // Capacity 4: keys 1 and 2 are promoted (proven), 3 and 4 sit in
    // probation. A hotter newcomer must displace probation, not the
    // protected set.
    GpuCache cache(4, 4);
    std::vector<float> out(4);
    for (Key k = 1; k <= 4; ++k)
        cache.Put(k, RowOf(static_cast<float>(k)).data());
    ASSERT_TRUE(cache.TryGet(1, out.data()));
    ASSERT_TRUE(cache.TryGet(2, out.data()));

    EXPECT_FALSE(cache.TryGet(9, out.data()));  // record 9 twice
    EXPECT_FALSE(cache.TryGet(9, out.data()));
    const Key evicted = cache.Put(9, RowOf(9).data());
    EXPECT_TRUE(evicted == 3u || evicted == 4u) << "evicted " << evicted;
    EXPECT_TRUE(cache.Contains(1));
    EXPECT_TRUE(cache.Contains(2));
    EXPECT_TRUE(cache.Contains(9));
}

TEST(GpuCacheTieredTest, CapacityOneFrequencyDuel)
{
    // Degenerate capacity: the sole resident is the victim candidate;
    // only a strictly hotter key may displace it.
    GpuCache cache(1, 4);
    cache.Put(1, RowOf(1).data());
    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(1, out.data()));  // est(1) = 1, now hot

    EXPECT_EQ(cache.Put(2, RowOf(2).data()), kInvalidKey);  // 0 ≤ 1
    EXPECT_FALSE(cache.TryGet(2, out.data()));
    EXPECT_EQ(cache.Put(2, RowOf(2).data()), kInvalidKey);  // 1 ≤ 1
    EXPECT_FALSE(cache.TryGet(2, out.data()));
    EXPECT_EQ(cache.Put(2, RowOf(2).data()), 1u);  // 2 > 1: displaced
    EXPECT_TRUE(cache.Contains(2));
}

TEST(GpuCacheTieredTest, WarmRowsStayProbationaryUntilRereferenced)
{
    GpuCache cache(4, 4);
    ASSERT_TRUE(cache.WarmOne(7, RowOf(7).data(), /*next_use=*/5));
    EXPECT_EQ(cache.hot_size(), 0u);

    // First hit stands in for the demand insert the warm replaced:
    // cold MRU, no promotion. The second hit is the re-reference.
    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(7, out.data()));
    EXPECT_EQ(cache.hot_size(), 0u);
    EXPECT_EQ(cache.stats().warm_hits, 1u);
    ASSERT_TRUE(cache.TryGet(7, out.data()));
    EXPECT_EQ(cache.hot_size(), 1u);
    EXPECT_EQ(cache.stats().promotions, 1u);
}

TEST(GpuCacheTieredTest, ResizePreservesSegmentsAndRetainsHotRows)
{
    // The kCritical memory-pressure path: squeeze the cache hard, then
    // grow it back. Proven (hot) residents must be retained
    // preferentially, keep their segment membership, and survive with
    // their row data and next-use hints intact.
    GpuCache cache(8, 4);
    std::vector<float> out(4);
    for (Key k = 1; k <= 8; ++k)
        cache.Put(k, RowOf(static_cast<float>(k)).data());
    for (Key k = 1; k <= 4; ++k)
        ASSERT_TRUE(cache.TryGet(k, out.data()));  // promote 1..4
    EXPECT_EQ(cache.hot_size(), 4u);

    // Squeeze to half (what the monitor does at kCritical): the four
    // probationary rows are the emergency victims; the hot budget at
    // capacity 4 is 3, so one hot row demotes back to probation.
    EXPECT_EQ(cache.Resize(4), 4u);
    EXPECT_EQ(cache.size(), 4u);
    for (Key k = 1; k <= 4; ++k)
        EXPECT_TRUE(cache.Contains(k)) << "hot key " << k << " lost";
    for (Key k = 5; k <= 8; ++k)
        EXPECT_FALSE(cache.Contains(k));
    EXPECT_EQ(cache.hot_size(), 3u);
    EXPECT_EQ(cache.stats().demotions, 1u);

    // Rows survived the rebuild bit-for-bit.
    for (Key k = 1; k <= 4; ++k) {
        ASSERT_TRUE(cache.TryGet(k, out.data()));
        EXPECT_EQ(out[0], static_cast<float>(k));
    }

    // Grow back (pressure cleared): nothing is lost, segment state
    // still consistent, and the cache is immediately usable at the
    // restored capacity.
    EXPECT_EQ(cache.Resize(8), 0u);
    EXPECT_EQ(cache.size(), 4u);
    for (Key k = 1; k <= 4; ++k)
        EXPECT_TRUE(cache.Contains(k));
    cache.Put(9, RowOf(9).data());  // free slots exist again
    EXPECT_TRUE(cache.Contains(9));
    EXPECT_EQ(cache.size(), 5u);
}

TEST(GpuCacheTieredTest, ResizePreservesRecencyOrderWithinSegments)
{
    // Legacy mode resize keeps exact LRU order (the original resize
    // contract): shrink, then verify the next victim is the true LRU.
    GpuCache cache(4, 4, LegacyLruOptions());
    std::vector<float> out(4);
    for (Key k = 1; k <= 4; ++k)
        cache.Put(k, RowOf(static_cast<float>(k)).data());
    ASSERT_TRUE(cache.TryGet(1, out.data()));  // order (MRU→LRU): 1,4,3,2
    EXPECT_EQ(cache.Resize(3), 1u);            // evicts 2
    EXPECT_FALSE(cache.Contains(2));
    const Key evicted = cache.Put(9, RowOf(9).data());
    EXPECT_EQ(evicted, 3u);  // 3 is now the LRU tail
}

TEST(KeyOwnershipTest, PartitionIsCompleteAndStable)
{
    KeyOwnership owners(4);
    std::vector<int> counts(4, 0);
    for (Key k = 0; k < 100000; ++k) {
        const GpuId owner = owners.OwnerOf(k);
        ASSERT_LT(owner, 4u);
        counts[owner]++;
        ASSERT_EQ(owner, owners.OwnerOf(k));  // stable
    }
    for (int c : counts)  // roughly balanced
        EXPECT_NEAR(c, 25000, 1000);
}

TEST(KeyOwnershipTest, SingleGpuOwnsEverything)
{
    KeyOwnership owners(1);
    for (Key k = 0; k < 1000; ++k)
        ASSERT_EQ(owners.OwnerOf(k), 0u);
}

}  // namespace
}  // namespace frugal
