/** Tests for the per-GPU LRU embedding cache and key ownership. */
#include "cache/gpu_cache.h"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <thread>
#include <vector>

namespace frugal {
namespace {

std::vector<float>
RowOf(float v, std::size_t dim = 4)
{
    return std::vector<float>(dim, v);
}

TEST(GpuCacheTest, MissThenHit)
{
    GpuCache cache(4, 4);
    std::vector<float> out(4);
    EXPECT_FALSE(cache.TryGet(1, out.data()));
    cache.Put(1, RowOf(1.5f).data());
    ASSERT_TRUE(cache.TryGet(1, out.data()));
    EXPECT_EQ(out[0], 1.5f);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(GpuCacheTest, EvictsLruWhenFull)
{
    GpuCache cache(2, 4);
    std::vector<float> out(4);
    cache.Put(1, RowOf(1).data());
    cache.Put(2, RowOf(2).data());
    ASSERT_TRUE(cache.TryGet(1, out.data()));  // 1 becomes MRU
    const Key evicted = cache.Put(3, RowOf(3).data());
    EXPECT_EQ(evicted, 2u);  // 2 was LRU
    EXPECT_TRUE(cache.Contains(1));
    EXPECT_FALSE(cache.Contains(2));
    EXPECT_TRUE(cache.Contains(3));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(GpuCacheTest, PutExistingOverwritesWithoutEviction)
{
    GpuCache cache(2, 4);
    cache.Put(1, RowOf(1).data());
    const Key evicted = cache.Put(1, RowOf(9).data());
    EXPECT_EQ(evicted, kInvalidKey);
    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(1, out.data()));
    EXPECT_EQ(out[0], 9.0f);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(GpuCacheTest, UpdateIfPresent)
{
    GpuCache cache(2, 4);
    EXPECT_FALSE(cache.UpdateIfPresent(5, RowOf(5).data()));
    cache.Put(5, RowOf(1).data());
    EXPECT_TRUE(cache.UpdateIfPresent(5, RowOf(7).data()));
    std::vector<float> out(4);
    ASSERT_TRUE(cache.TryGet(5, out.data()));
    EXPECT_EQ(out[0], 7.0f);
    EXPECT_EQ(cache.stats().flush_writes, 1u);
}

TEST(GpuCacheTest, UpdateIfPresentDoesNotTouchLru)
{
    GpuCache cache(2, 4);
    cache.Put(1, RowOf(1).data());
    cache.Put(2, RowOf(2).data());
    // 1 is LRU; a flush write to 1 must NOT promote it.
    cache.UpdateIfPresent(1, RowOf(9).data());
    const Key evicted = cache.Put(3, RowOf(3).data());
    EXPECT_EQ(evicted, 1u);
}

TEST(GpuCacheTest, ModelEquivalenceAgainstReferenceLru)
{
    // Randomised trace checked against a simple map+list reference model.
    constexpr std::size_t kCapacity = 16;
    GpuCache cache(kCapacity, 2);
    std::list<Key> ref_lru;  // front = MRU
    std::map<Key, float> ref;

    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        const Key k = rng.NextBounded(64);
        std::vector<float> out(2);
        const bool hit = cache.TryGet(k, out.data());
        const bool ref_hit = ref.count(k) > 0;
        ASSERT_EQ(hit, ref_hit) << "op " << i << " key " << k;
        if (hit) {
            ASSERT_EQ(out[0], ref[k]);
            ref_lru.remove(k);
            ref_lru.push_front(k);
        } else {
            const float v = static_cast<float>(i);
            cache.Put(k, RowOf(v, 2).data());
            if (ref.size() == kCapacity) {
                const Key victim = ref_lru.back();
                ref_lru.pop_back();
                ref.erase(victim);
            }
            ref.emplace(k, v);
            ref_lru.push_front(k);
        }
    }
}

TEST(GpuCacheTest, ConcurrentReaderAndFlushWriter)
{
    GpuCache cache(64, 4);
    for (Key k = 0; k < 64; ++k)
        cache.Put(k, RowOf(static_cast<float>(k)).data());

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        int round = 0;
        while (!stop) {
            for (Key k = 0; k < 64; ++k)
                cache.UpdateIfPresent(k, RowOf(static_cast<float>(round))
                                             .data());
            ++round;
        }
    });
    std::vector<float> out(4);
    for (int i = 0; i < 100000; ++i) {
        const Key k = static_cast<Key>(i % 64);
        ASSERT_TRUE(cache.TryGet(k, out.data()));
        // Row must be internally consistent (all lanes equal).
        ASSERT_EQ(out[0], out[3]);
    }
    stop = true;
    writer.join();
}

TEST(KeyOwnershipTest, PartitionIsCompleteAndStable)
{
    KeyOwnership owners(4);
    std::vector<int> counts(4, 0);
    for (Key k = 0; k < 100000; ++k) {
        const GpuId owner = owners.OwnerOf(k);
        ASSERT_LT(owner, 4u);
        counts[owner]++;
        ASSERT_EQ(owner, owners.OwnerOf(k));  // stable
    }
    for (int c : counts)  // roughly balanced
        EXPECT_NEAR(c, 25000, 1000);
}

TEST(KeyOwnershipTest, SingleGpuOwnsEverything)
{
    KeyOwnership owners(1);
    for (Key k = 0; k < 1000; ++k)
        ASSERT_EQ(owners.OwnerOf(k), 0u);
}

}  // namespace
}  // namespace frugal
