/**
 * @file
 * Chaos-soak harness (DESIGN.md §12.4): long randomized fault campaigns
 * against the full FrugalEngine pipeline. Each campaign is a *seeded*
 * FaultPlan — flusher deaths, transient host writes, drainer stalls,
 * torn checkpoint writes — layered over thousands of training steps,
 * optionally under a backpressure-bounded staging queue and a mid-run
 * memory-budget squeeze. The assertions are the system's whole
 * robustness contract at once:
 *
 *   liveness     — the run terminates (no wedged gate, no leaked claim);
 *   recovery     — every injected death is matched by a respawn, every
 *                  emitted update is applied;
 *   correctness  — the trained table is bit-equal to the fault-free
 *                  single-threaded oracle, whatever the campaign did.
 *
 * Seeds make every campaign replayable: a failure here is a repro
 * recipe, not a flake. bench/bench_chaos.cc runs the same shape with
 * throughput instrumentation.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/distribution.h"
#include "common/fault_injector.h"
#include "common/memory_budget.h"
#include "common/rng.h"
#include "runtime/frugal_engine.h"
#include "runtime/microtask.h"
#include "runtime/oracle.h"

namespace frugal {
namespace {

/** Soak length per campaign (the acceptance floor is 2k). */
constexpr std::size_t kSoakSteps = 2048;

EngineConfig
SoakConfig()
{
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 4;
    config.key_space = 256;
    config.cache_ratio = 0.05;
    config.flush_threads = 2;
    config.audit_consistency = true;
    config.watchdog_poll_ms = 1;  // recover fast at test scale
    return config;
}

void
ExpectOracleEqual(Engine &engine, const Trace &trace, const GradFn &task)
{
    EmbeddingTableConfig tc;
    tc.key_space = engine.config().key_space;
    tc.dim = engine.config().dim;
    tc.init_seed = engine.config().init_seed;
    tc.init_scale = engine.config().init_scale;
    HostEmbeddingTable oracle_table(tc);
    auto opt = MakeOptimizer(engine.config().optimizer,
                             engine.config().learning_rate,
                             engine.config().key_space,
                             engine.config().dim);
    RunOracle(oracle_table, *opt, trace, task);
    EXPECT_TRUE(TablesBitEqual(engine.table(), oracle_table))
        << "max diff " << MaxAbsTableDiff(engine.table(), oracle_table);
}

/** Common liveness/recovery postconditions of every campaign. */
void
ExpectCampaignSound(const RunReport &report)
{
    EXPECT_EQ(report.steps, kSoakSteps);  // the run terminated, fully
    EXPECT_EQ(report.updates_applied, report.updates_emitted);
    EXPECT_EQ(report.recovery.flusher_deaths,
              report.recovery.flusher_respawns);
    EXPECT_EQ(report.audit_violations, 0u);
}

/** Scatters `count` drainer stalls of `payload_ms` over the soak at
 *  seed-derived steps (the "randomized" in randomized chaos). */
void
AddRandomDrainStalls(FaultPlan &plan, Rng &rng, int count,
                     std::uint32_t payload_ms)
{
    for (int i = 0; i < count; ++i) {
        FaultRule stall;
        stall.site = FaultSite::kStagingDrainStall;
        stall.context = rng() % kSoakSteps;
        stall.payload = payload_ms;
        plan.rules.push_back(stall);
    }
}

// Campaign 1: pipeline faults. A deterministic first-claim flusher
// death plus a probabilistic death tail, flaky host writes, seeded
// drainer stalls, and a transiently torn checkpoint write — all riding
// one 2k-step run with periodic checkpoint barriers.
TEST(ChaosSoakTest, PipelineFaultCampaignRecoversBitEqual)
{
    FaultPlan plan;
    plan.seed = 1001;
    Rng chaos_rng(plan.seed);

    FaultRule first_death;
    first_death.site = FaultSite::kFlushThreadDeath;
    first_death.until_hit = 1;  // hit 0 always dies: ≥ 1 recovery
    plan.rules.push_back(first_death);
    FaultRule death_tail;
    death_tail.site = FaultSite::kFlushThreadDeath;
    death_tail.from_hit = 1;
    death_tail.probability = 0.0005;
    plan.rules.push_back(death_tail);
    FaultRule flaky_writes;
    flaky_writes.site = FaultSite::kHostWriteTransient;
    flaky_writes.probability = 0.01;
    plan.rules.push_back(flaky_writes);
    FaultRule torn_ckpt;
    torn_ckpt.site = FaultSite::kCheckpointTornWrite;
    torn_ckpt.until_hit = 1;  // first save attempt fails, retry lands
    plan.rules.push_back(torn_ckpt);
    AddRandomDrainStalls(plan, chaos_rng, /*count=*/4, /*payload_ms=*/3);
    FaultInjector injector(plan);

    EngineConfig config = SoakConfig();
    config.fault_injector = &injector;
    config.checkpoint_every_steps = 512;
    config.checkpoint_path = "chaos_soak_ckpt.bin";

    Rng rng(41);
    ZipfDistribution dist(config.key_space, 0.9);
    const Trace trace =
        Trace::Synthetic(dist, rng, kSoakSteps, config.n_gpus, 8);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);

    ExpectCampaignSound(report);
    EXPECT_GE(report.recovery.flusher_deaths, 1u);
    EXPECT_GE(report.recovery.watchdog_recoveries, 1u);
    EXPECT_GT(report.recovery.write_retries, 0u);
    EXPECT_GE(report.recovery.checkpoint_barriers, 1u);
    EXPECT_GE(report.recovery.checkpoint_retries, 1u);
    ExpectOracleEqual(engine, trace, task);
    std::remove(config.checkpoint_path.c_str());
    std::remove((config.checkpoint_path + ".tmp").c_str());
}

// Campaign 2: overload under degradation. A one-batch staging bound
// (below the per-step batch fan-in) while a trainer death forces the
// survivor into degraded mode — it emits its dead peer's batch
// back-to-back with its own each step, so the second push meets a full
// queue before the drainer can wake and throttles. Flaky writes and
// drainer stalls ride along; backpressure must slow the run down, not
// lose updates or blow the bound.
TEST(ChaosSoakTest, OverloadCampaignThrottlesWithoutLoss)
{
    FaultPlan plan;
    plan.seed = 2002;
    Rng chaos_rng(plan.seed);
    FaultRule flaky_writes;
    flaky_writes.site = FaultSite::kHostWriteTransient;
    flaky_writes.probability = 0.01;
    plan.rules.push_back(flaky_writes);
    FaultRule trainer_death;
    trainer_death.site = FaultSite::kTrainerDeath;
    trainer_death.context = 8;  // dies at the step-8 boundary
    trainer_death.payload = 1;  // victim GPU id
    plan.rules.push_back(trainer_death);
    AddRandomDrainStalls(plan, chaos_rng, /*count=*/6, /*payload_ms=*/10);
    FaultInjector injector(plan);

    EngineConfig config = SoakConfig();
    config.fault_injector = &injector;
    config.update_queue_cap = 1;  // below the per-step batch fan-in
    config.flush_delay_us = 2;

    Rng rng(42);
    ZipfDistribution dist(config.key_space, 0.9);
    const Trace trace =
        Trace::Synthetic(dist, rng, kSoakSteps, config.n_gpus, 8);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);

    ExpectCampaignSound(report);
    EXPECT_EQ(report.recovery.trainer_deaths, 1u);
    EXPECT_GT(report.overload.throttle_events, 0u);
    EXPECT_GT(report.overload.throttle_wait_seconds, 0.0);
    ExpectOracleEqual(engine, trace, task);
}

// Campaign 3: memory-pressure squeeze. The budget is halved against
// live usage mid-run (forcing kCritical: degradation sheds lookahead,
// coalescing width and cache rows) and restored later (reactions roll
// back). Write-through coherence makes every reaction invisible to the
// trained table.
TEST(ChaosSoakTest, BudgetSqueezeCampaignDegradesBitEqual)
{
    FaultPlan plan;
    plan.seed = 3003;
    FaultRule flaky_writes;
    flaky_writes.site = FaultSite::kHostWriteTransient;
    flaky_writes.probability = 0.005;
    plan.rules.push_back(flaky_writes);
    FaultInjector injector(plan);

    MemoryBudget budget(1u << 30);  // ample: starts kNormal
    EngineConfig config = SoakConfig();
    config.fault_injector = &injector;
    config.memory_budget = &budget;
    config.memory_poll_ms = 1;

    Rng rng(43);
    ZipfDistribution dist(config.key_space, 0.9);
    const Trace trace =
        Trace::Synthetic(dist, rng, kSoakSteps, config.n_gpus, 8);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const StepHook squeeze = [&budget](Step step) {
        if (step == kSoakSteps / 4) {
            // Halve the budget against what is actually resident:
            // usage lands at 200% of budget, deep into kCritical.
            const std::size_t used = budget.TotalBytes();
            budget.SetBudget(used > 1 ? used / 2 : 1);
        } else if (step == kSoakSteps / 2) {
            budget.SetBudget(1u << 30);  // operator relief: back off
        }
    };
    const RunReport report = engine.Run(trace, task, squeeze);

    ExpectCampaignSound(report);
    EXPECT_GE(report.overload.pressure_transitions, 1u);
    EXPECT_EQ(report.overload.peak_stage, 2u);
    EXPECT_GT(report.overload.peak_tracked_bytes, 0u);
    ExpectOracleEqual(engine, trace, task);
}

}  // namespace
}  // namespace frugal
