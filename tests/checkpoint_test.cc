/** Tests for embedding-table checkpointing. */
#include "table/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/distribution.h"
#include "runtime/frugal_engine.h"
#include "runtime/microtask.h"
#include "runtime/oracle.h"

namespace frugal {
namespace {

EmbeddingTableConfig
SmallConfig()
{
    EmbeddingTableConfig config;
    config.key_space = 64;
    config.dim = 8;
    config.init_seed = 9;
    return config;
}

class CheckpointTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = "/tmp/frugal_ckpt_test_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
                ".bin";
    }
    void TearDown() override { std::remove(path_.c_str()); }
    std::string path_;
};

TEST_F(CheckpointTest, RoundTripBitExact)
{
    HostEmbeddingTable table(SmallConfig());
    SgdOptimizer sgd(0.5f);
    std::vector<float> grad(8, 1.0f);
    for (Key k = 0; k < 64; k += 3)
        table.ApplyGradient(k, grad.data(), sgd);

    SaveCheckpoint(table, path_);
    HostEmbeddingTable restored(SmallConfig());
    ASSERT_TRUE(LoadCheckpoint(restored, path_));
    EXPECT_TRUE(TablesBitEqual(table, restored));
}

TEST_F(CheckpointTest, ProbeReadsHeader)
{
    HostEmbeddingTable table(SmallConfig());
    SaveCheckpoint(table, path_);
    CheckpointInfo info;
    ASSERT_TRUE(ProbeCheckpoint(path_, &info));
    EXPECT_EQ(info.key_space, 64u);
    EXPECT_EQ(info.dim, 8u);
}

TEST_F(CheckpointTest, MissingFile)
{
    HostEmbeddingTable table(SmallConfig());
    EXPECT_FALSE(LoadCheckpoint(table, "/tmp/definitely-missing.bin"));
    EXPECT_FALSE(ProbeCheckpoint("/tmp/definitely-missing.bin", nullptr));
}

TEST_F(CheckpointTest, ShapeMismatchRejected)
{
    HostEmbeddingTable table(SmallConfig());
    SaveCheckpoint(table, path_);
    EmbeddingTableConfig other = SmallConfig();
    other.key_space = 128;
    HostEmbeddingTable wrong(other);
    EXPECT_FALSE(LoadCheckpoint(wrong, path_));
}

TEST_F(CheckpointTest, CorruptPayloadRejectedAndTableUntouched)
{
    HostEmbeddingTable table(SmallConfig());
    SaveCheckpoint(table, path_);
    {
        // Flip a byte in the row payload.
        std::fstream file(path_,
                          std::ios::binary | std::ios::in | std::ios::out);
        file.seekp(64);
        char byte = 0x5a;
        file.write(&byte, 1);
    }
    HostEmbeddingTable restored(SmallConfig());
    SgdOptimizer sgd(1.0f);
    std::vector<float> grad(8, 2.0f);
    restored.ApplyGradient(7, grad.data(), sgd);
    HostEmbeddingTable snapshot(SmallConfig());
    snapshot.ApplyGradient(7, grad.data(), sgd);

    EXPECT_FALSE(LoadCheckpoint(restored, path_));
    EXPECT_TRUE(TablesBitEqual(restored, snapshot));  // untouched
}

TEST_F(CheckpointTest, TruncatedFileRejected)
{
    HostEmbeddingTable table(SmallConfig());
    SaveCheckpoint(table, path_);
    // Truncate to header + half the payload.
    std::ifstream in(path_, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
    out.close();
    HostEmbeddingTable restored(SmallConfig());
    EXPECT_FALSE(LoadCheckpoint(restored, path_));
}

TEST_F(CheckpointTest, GarbageFileRejected)
{
    std::ofstream out(path_, std::ios::binary);
    out << "not a checkpoint at all";
    out.close();
    HostEmbeddingTable table(SmallConfig());
    EXPECT_FALSE(LoadCheckpoint(table, path_));
    EXPECT_FALSE(ProbeCheckpoint(path_, nullptr));
}

TEST_F(CheckpointTest, TrainSaveResumeMatchesContinuousRun)
{
    // Train 40 steps, checkpoint, resume into a fresh engine for 40
    // more; must equal one continuous 80-step run (checkpoints are
    // consistency points — §3.3's end-of-training drain).
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 8;
    config.key_space = 64;
    config.flush_threads = 2;
    Rng rng(4);
    ZipfDistribution dist(64, 0.9);
    const Trace trace = Trace::Synthetic(dist, rng, 80, 2, 8);

    std::vector<StepKeys> first_half, second_half;
    for (std::size_t s = 0; s < 40; ++s)
        first_half.push_back(trace.StepAt(s));
    for (std::size_t s = 40; s < 80; ++s)
        second_half.push_back(trace.StepAt(s));
    const GradFn task = MakeLinearGradTask();

    FrugalEngine continuous(config);
    continuous.Run(trace, task);

    FrugalEngine phase1(config);
    phase1.Run(Trace(std::move(first_half), 64, 2), task);
    SaveCheckpoint(phase1.table(), path_);

    FrugalEngine phase2(config);
    ASSERT_TRUE(LoadCheckpoint(phase2.table(), path_));
    phase2.Run(Trace(std::move(second_half), 64, 2), task);

    EXPECT_TRUE(TablesBitEqual(phase2.table(), continuous.table()));
}

}  // namespace
}  // namespace frugal
