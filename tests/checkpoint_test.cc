/** Tests for embedding-table checkpointing (format v2). */
#include "table/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/distribution.h"
#include "common/fault_injector.h"
#include "runtime/frugal_engine.h"
#include "runtime/microtask.h"
#include "runtime/oracle.h"

namespace frugal {
namespace {

EmbeddingTableConfig
SmallConfig()
{
    EmbeddingTableConfig config;
    config.key_space = 64;
    config.dim = 8;
    config.init_seed = 9;
    return config;
}

/** Overwrites one byte at `offset` in the file. */
void
PatchByte(const std::string &path, std::streamoff offset, char byte)
{
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    file.seekp(offset);
    file.write(&byte, 1);
    ASSERT_TRUE(file.good());
}

/** XORs one byte at `offset` (guaranteed to change it). */
void
FlipByte(const std::string &path, std::streamoff offset)
{
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    file.seekg(offset);
    char byte = 0;
    file.read(&byte, 1);
    ASSERT_TRUE(file.good());
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(offset);
    file.write(&byte, 1);
    ASSERT_TRUE(file.good());
}

std::size_t
FileSize(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    return in.good() ? static_cast<std::size_t>(in.tellg()) : 0;
}

void
TruncateFile(const std::string &path, std::size_t keep)
{
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(std::min(keep, contents.size())));
}

class CheckpointTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = "/tmp/frugal_ckpt_test_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
                ".bin";
    }
    void TearDown() override { std::remove(path_.c_str()); }
    std::string path_;
};

TEST_F(CheckpointTest, RoundTripBitExact)
{
    HostEmbeddingTable table(SmallConfig());
    SgdOptimizer sgd(0.5f);
    std::vector<float> grad(8, 1.0f);
    for (Key k = 0; k < 64; k += 3)
        table.ApplyGradient(k, grad.data(), sgd);

    ASSERT_TRUE(SaveCheckpoint(table, path_));
    HostEmbeddingTable restored(SmallConfig());
    ASSERT_TRUE(LoadCheckpoint(restored, path_));
    EXPECT_TRUE(TablesBitEqual(table, restored));
}

TEST_F(CheckpointTest, ProbeReadsHeader)
{
    HostEmbeddingTable table(SmallConfig());
    CheckpointExtras extras;
    extras.optimizer_name = "sgd";
    extras.next_step = 123;
    ASSERT_TRUE(SaveCheckpoint(table, extras, path_));
    CheckpointInfo info;
    ASSERT_TRUE(ProbeCheckpoint(path_, &info));
    EXPECT_EQ(info.version, 2u);
    EXPECT_EQ(info.key_space, 64u);
    EXPECT_EQ(info.dim, 8u);
    EXPECT_EQ(info.next_step, 123u);
    EXPECT_EQ(info.optimizer_name, "sgd");
    EXPECT_EQ(info.opt_state_floats, 0u);
}

TEST_F(CheckpointTest, AdagradStateRoundTrip)
{
    HostEmbeddingTable table(SmallConfig());
    AdagradOptimizer adagrad(0.1f, 64, 8);
    std::vector<float> grad(8, 0.5f);
    for (Key k = 0; k < 64; k += 5)
        table.ApplyGradient(k, grad.data(), adagrad);

    CheckpointExtras extras;
    extras.optimizer_name = adagrad.Name();
    extras.optimizer_state = adagrad.ExportState();
    extras.next_step = 17;
    ASSERT_TRUE(SaveCheckpoint(table, extras, path_));

    HostEmbeddingTable restored(SmallConfig());
    AdagradOptimizer fresh(0.1f, 64, 8);
    CheckpointExtras loaded;
    ASSERT_TRUE(LoadCheckpoint(restored, path_, &loaded));
    EXPECT_EQ(loaded.optimizer_name, "adagrad");
    EXPECT_EQ(loaded.next_step, 17u);
    ASSERT_TRUE(fresh.ImportState(loaded.optimizer_state));
    EXPECT_TRUE(TablesBitEqual(table, restored));
    EXPECT_EQ(fresh.ExportState(), adagrad.ExportState());
}

TEST_F(CheckpointTest, ImportStateRejectsWrongShape)
{
    AdagradOptimizer adagrad(0.1f, 64, 8);
    EXPECT_FALSE(adagrad.ImportState(std::vector<float>(7, 0.0f)));
    // Stateless SGD accepts only the empty state.
    SgdOptimizer sgd(0.1f);
    EXPECT_TRUE(sgd.ImportState({}));
    EXPECT_FALSE(sgd.ImportState(std::vector<float>(3, 0.0f)));
}

TEST_F(CheckpointTest, MissingFile)
{
    HostEmbeddingTable table(SmallConfig());
    EXPECT_FALSE(LoadCheckpoint(table, "/tmp/definitely-missing.bin"));
    EXPECT_FALSE(ProbeCheckpoint("/tmp/definitely-missing.bin", nullptr));
}

TEST_F(CheckpointTest, ShapeMismatchRejected)
{
    HostEmbeddingTable table(SmallConfig());
    ASSERT_TRUE(SaveCheckpoint(table, path_));
    EmbeddingTableConfig other = SmallConfig();
    other.key_space = 128;
    HostEmbeddingTable wrong_rows(other);
    EXPECT_FALSE(LoadCheckpoint(wrong_rows, path_));
    other = SmallConfig();
    other.dim = 16;
    HostEmbeddingTable wrong_dim(other);
    EXPECT_FALSE(LoadCheckpoint(wrong_dim, path_));
}

TEST_F(CheckpointTest, VersionSkewRejected)
{
    HostEmbeddingTable table(SmallConfig());
    ASSERT_TRUE(SaveCheckpoint(table, path_));
    // The version field sits at byte 8, after the 8-byte magic.
    PatchByte(path_, 8, 1);
    CheckpointInfo info;
    ASSERT_TRUE(ProbeCheckpoint(path_, &info));  // magic still valid
    EXPECT_EQ(info.version, 1u);
    HostEmbeddingTable restored(SmallConfig());
    EXPECT_FALSE(LoadCheckpoint(restored, path_));
}

TEST_F(CheckpointTest, CorruptPayloadRejectedAndTableUntouched)
{
    HostEmbeddingTable table(SmallConfig());
    ASSERT_TRUE(SaveCheckpoint(table, path_));
    FlipByte(path_, 64);  // first row byte, just past the header

    HostEmbeddingTable restored(SmallConfig());
    SgdOptimizer sgd(1.0f);
    std::vector<float> grad(8, 2.0f);
    restored.ApplyGradient(7, grad.data(), sgd);
    HostEmbeddingTable snapshot(SmallConfig());
    snapshot.ApplyGradient(7, grad.data(), sgd);

    EXPECT_FALSE(LoadCheckpoint(restored, path_));
    EXPECT_TRUE(TablesBitEqual(restored, snapshot));  // untouched
}

TEST_F(CheckpointTest, CorruptChecksumRejected)
{
    HostEmbeddingTable table(SmallConfig());
    ASSERT_TRUE(SaveCheckpoint(table, path_));
    const std::size_t size = FileSize(path_);
    ASSERT_GT(size, 8u);
    FlipByte(path_, static_cast<std::streamoff>(size - 1));
    HostEmbeddingTable restored(SmallConfig());
    EXPECT_FALSE(LoadCheckpoint(restored, path_));
}

TEST_F(CheckpointTest, CorruptResumeCursorRejected)
{
    // The cursor is checksummed too: a flipped step count must not load
    // (it would silently replay or skip training steps).
    HostEmbeddingTable table(SmallConfig());
    CheckpointExtras extras;
    extras.next_step = 40;
    ASSERT_TRUE(SaveCheckpoint(table, extras, path_));
    FlipByte(path_, 32);  // Header::next_step
    HostEmbeddingTable restored(SmallConfig());
    EXPECT_FALSE(LoadCheckpoint(restored, path_));
}

TEST_F(CheckpointTest, TruncatedHeaderRejected)
{
    HostEmbeddingTable table(SmallConfig());
    ASSERT_TRUE(SaveCheckpoint(table, path_));
    TruncateFile(path_, 32);  // half a header
    HostEmbeddingTable restored(SmallConfig());
    EXPECT_FALSE(LoadCheckpoint(restored, path_));
    EXPECT_FALSE(ProbeCheckpoint(path_, nullptr));
}

TEST_F(CheckpointTest, TruncatedRowsRejected)
{
    HostEmbeddingTable table(SmallConfig());
    ASSERT_TRUE(SaveCheckpoint(table, path_));
    TruncateFile(path_, FileSize(path_) / 2);
    HostEmbeddingTable restored(SmallConfig());
    EXPECT_FALSE(LoadCheckpoint(restored, path_));
}

TEST_F(CheckpointTest, GarbageFileRejected)
{
    std::ofstream out(path_, std::ios::binary);
    out << "not a checkpoint at all";
    out.close();
    HostEmbeddingTable table(SmallConfig());
    EXPECT_FALSE(LoadCheckpoint(table, path_));
    EXPECT_FALSE(ProbeCheckpoint(path_, nullptr));
}

TEST_F(CheckpointTest, OversizedOptStateHeaderRejected)
{
    // A corrupt opt_state_floats field must not drive a huge allocation
    // or a successful load.
    HostEmbeddingTable table(SmallConfig());
    ASSERT_TRUE(SaveCheckpoint(table, path_));
    PatchByte(path_, 40 + 5, 0x7f);  // Header::opt_state_floats, high byte
    HostEmbeddingTable restored(SmallConfig());
    EXPECT_FALSE(LoadCheckpoint(restored, path_));
}

TEST_F(CheckpointTest, InjectedTruncationRejectedOnLoad)
{
    // The injector damages the temp file *after* fsync — exactly the
    // torn write a crash-before-rename would leave. Save reports
    // success (the damage is invisible to it); Load must reject.
    HostEmbeddingTable table(SmallConfig());
    FaultPlan plan;
    FaultRule rule;
    rule.site = FaultSite::kCheckpointTruncate;
    plan.rules.push_back(rule);
    FaultInjector injector(plan);
    ASSERT_TRUE(
        SaveCheckpoint(table, CheckpointExtras{}, path_, &injector));
    EXPECT_EQ(injector.fires(FaultSite::kCheckpointTruncate), 1u);
    HostEmbeddingTable restored(SmallConfig());
    EXPECT_FALSE(LoadCheckpoint(restored, path_));
}

TEST_F(CheckpointTest, InjectedBitFlipRejectedOnLoad)
{
    HostEmbeddingTable table(SmallConfig());
    FaultPlan plan;
    FaultRule rule;
    rule.site = FaultSite::kCheckpointCorrupt;
    plan.rules.push_back(rule);
    FaultInjector injector(plan);
    ASSERT_TRUE(
        SaveCheckpoint(table, CheckpointExtras{}, path_, &injector));
    EXPECT_EQ(injector.fires(FaultSite::kCheckpointCorrupt), 1u);
    HostEmbeddingTable restored(SmallConfig());
    EXPECT_FALSE(LoadCheckpoint(restored, path_));
}

TEST_F(CheckpointTest, InjectedTornWriteFailsTransientlyThenRetrySucceeds)
{
    // Unlike kCheckpointTruncate (post-fsync, invisible to Save), the
    // torn write fires *before* fsync: Save itself must report the
    // transient failure, discard the temp file, and leave any previous
    // checkpoint untouched — exactly what the engine's RetryPolicy
    // wrapper needs to retry safely.
    HostEmbeddingTable table(SmallConfig());
    ASSERT_TRUE(SaveCheckpoint(table, path_));
    const std::size_t intact_size = FileSize(path_);
    ASSERT_GT(intact_size, 0u);

    SgdOptimizer sgd(0.5f);
    std::vector<float> grad(8, 2.0f);
    table.ApplyGradient(0, grad.data(), sgd);

    FaultPlan plan;
    FaultRule rule;
    rule.site = FaultSite::kCheckpointTornWrite;
    rule.until_hit = 1;
    plan.rules.push_back(rule);
    FaultInjector injector(plan);
    EXPECT_FALSE(
        SaveCheckpoint(table, CheckpointExtras{}, path_, &injector));
    EXPECT_EQ(injector.fires(FaultSite::kCheckpointTornWrite), 1u);
    // The previous checkpoint survived, byte for byte loadable.
    EXPECT_EQ(FileSize(path_), intact_size);
    HostEmbeddingTable restored(SmallConfig());
    ASSERT_TRUE(LoadCheckpoint(restored, path_));
    // The torn temp file was discarded, not left to confuse recovery.
    EXPECT_EQ(FileSize(path_ + ".tmp"), 0u);

    // Window passed: the retry writes a complete, loadable checkpoint
    // with the new table contents.
    ASSERT_TRUE(
        SaveCheckpoint(table, CheckpointExtras{}, path_, &injector));
    HostEmbeddingTable updated(SmallConfig());
    ASSERT_TRUE(LoadCheckpoint(updated, path_));
    std::vector<float> row(8);
    updated.ReadRow(0, row.data());
    EXPECT_EQ(row[0], table.Row(0)[0]);
}

TEST_F(CheckpointTest, TornWritePayloadControlsBytesKept)
{
    // payload = N keeps exactly N row bytes in the torn temp file;
    // payload 0 means "half the rows". Either way Save fails.
    HostEmbeddingTable table(SmallConfig());
    for (std::uint64_t payload : {std::uint64_t{0}, std::uint64_t{16}}) {
        FaultPlan plan;
        FaultRule rule;
        rule.site = FaultSite::kCheckpointTornWrite;
        rule.until_hit = 1;
        rule.payload = payload;
        plan.rules.push_back(rule);
        FaultInjector injector(plan);
        EXPECT_FALSE(SaveCheckpoint(table, CheckpointExtras{}, path_,
                                    &injector))
            << "payload " << payload;
        EXPECT_EQ(injector.fires(FaultSite::kCheckpointTornWrite), 1u);
    }
}

TEST_F(CheckpointTest, TrainSaveResumeMatchesContinuousRun)
{
    // Train 40 steps, checkpoint, resume into a fresh engine for 40
    // more; must equal one continuous 80-step run (checkpoints are
    // consistency points — §3.3's end-of-training drain).
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 8;
    config.key_space = 64;
    config.flush_threads = 2;
    Rng rng(4);
    ZipfDistribution dist(64, 0.9);
    const Trace trace = Trace::Synthetic(dist, rng, 80, 2, 8);
    const GradFn task = MakeLinearGradTask();

    FrugalEngine continuous(config);
    continuous.Run(trace, task);

    FrugalEngine phase1(config);
    phase1.Run(trace.Slice(0, 40), task);
    ASSERT_TRUE(SaveCheckpoint(phase1.table(), path_));

    FrugalEngine phase2(config);
    ASSERT_TRUE(LoadCheckpoint(phase2.table(), path_));
    phase2.Run(trace.Slice(40, 80), task);

    EXPECT_TRUE(TablesBitEqual(phase2.table(), continuous.table()));
}

TEST_F(CheckpointTest, MidTrainingCheckpointResumeBitEqual)
{
    // The real interrupt/restore protocol: an engine with checkpoint
    // barriers armed trains with Adagrad, "crashes" after its last
    // barrier, and a fresh engine resumes from the file — replaying the
    // trace suffix must land bit-equal to an uninterrupted run, table
    // AND accumulator state.
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 8;
    config.key_space = 64;
    config.flush_threads = 2;
    config.optimizer = "adagrad";
    Rng rng(11);
    ZipfDistribution dist(64, 0.9);
    const Trace trace = Trace::Synthetic(dist, rng, 40, 2, 8);
    const GradFn task = MakeLinearGradTask();

    EngineConfig oracle_config = config;
    FrugalEngine oracle(oracle_config);
    oracle.Run(trace, task);

    EngineConfig ckpt_config = config;
    ckpt_config.checkpoint_every_steps = 16;
    ckpt_config.checkpoint_path = path_;
    FrugalEngine interrupted(ckpt_config);
    const RunReport report = interrupted.Run(trace, task);
    EXPECT_EQ(report.recovery.checkpoint_barriers, 2u);  // steps 16, 32

    // "Crash": discard `interrupted`; restore its last barrier (cursor
    // 32) into a brand-new engine and replay the remaining steps.
    FrugalEngine resumed(config);
    const auto cursor = resumed.ResumeFrom(path_);
    ASSERT_TRUE(cursor.has_value());
    EXPECT_EQ(*cursor, 32u);
    resumed.Run(trace.Slice(*cursor, trace.NumSteps()), task);

    EXPECT_TRUE(TablesBitEqual(resumed.table(), oracle.table()));
    EXPECT_EQ(resumed.optimizer().ExportState(),
              oracle.optimizer().ExportState());
}

TEST_F(CheckpointTest, ResumeFromRejectsOptimizerMismatch)
{
    EngineConfig config;
    config.n_gpus = 1;
    config.dim = 8;
    config.key_space = 64;
    FrugalEngine sgd_engine(config);  // optimizer defaults to "sgd"
    CheckpointExtras extras;
    extras.optimizer_name = "adagrad";
    extras.optimizer_state.assign(64 * 8, 0.0f);
    extras.next_step = 10;
    ASSERT_TRUE(SaveCheckpoint(sgd_engine.table(), extras, path_));
    EXPECT_FALSE(sgd_engine.ResumeFrom(path_).has_value());
}

}  // namespace
}  // namespace frugal
