/**
 * @file
 * ChunkArena unit tests: address stability across chunk growth,
 * alignment of over-aligned types, creation-order iteration, and
 * destructor accounting.
 */
#include "common/arena.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace frugal {
namespace {

TEST(ChunkArenaTest, CreateReturnsConstructedObject)
{
    ChunkArena<std::uint64_t> arena(4);
    std::uint64_t *value = arena.Create(42u);
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(*value, 42u);
    EXPECT_EQ(arena.size(), 1u);
    EXPECT_EQ(arena.chunks(), 1u);
}

TEST(ChunkArenaTest, AddressesStayStableAcrossChunkGrowth)
{
    // Tiny chunks force many seals; every earlier pointer must still
    // dereference to its original value afterwards (the FlushQueue holds
    // raw GEntry pointers for the whole run).
    ChunkArena<std::uint64_t> arena(8);
    std::vector<std::uint64_t *> pointers;
    for (std::uint64_t i = 0; i < 1000; ++i)
        pointers.push_back(arena.Create(i));
    EXPECT_EQ(arena.size(), 1000u);
    EXPECT_EQ(arena.chunks(), (1000 + 7) / 8);
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_EQ(*pointers[i], i) << "object " << i << " moved";
}

TEST(ChunkArenaTest, ForEachVisitsInCreationOrder)
{
    ChunkArena<int> arena(3);
    for (int i = 0; i < 10; ++i)
        arena.Create(i);
    std::vector<int> seen;
    arena.ForEach([&](int &value) { seen.push_back(value); });
    ASSERT_EQ(seen.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(ChunkArenaTest, OverAlignedTypeIsAligned)
{
    struct alignas(64) Padded
    {
        std::uint64_t value;
    };
    ChunkArena<Padded> arena(5);
    for (std::uint64_t i = 0; i < 20; ++i) {
        Padded *object = arena.Create(Padded{i});
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(object) % 64, 0u);
        EXPECT_EQ(object->value, i);
    }
}

TEST(ChunkArenaTest, DestructorRunsForEveryObject)
{
    static int live = 0;
    struct Counted
    {
        Counted() { ++live; }
        Counted(const Counted &) { ++live; }
        ~Counted() { --live; }
    };
    live = 0;
    {
        ChunkArena<Counted> arena(4);
        for (int i = 0; i < 11; ++i)
            arena.Create();
        EXPECT_EQ(live, 11);
    }
    EXPECT_EQ(live, 0);
}

TEST(ChunkArenaTest, NonTrivialConstructorArguments)
{
    struct Pair
    {
        Pair(std::uint64_t a_in, std::uint64_t b_in) : a(a_in), b(b_in) {}
        std::uint64_t a;
        std::uint64_t b;
    };
    ChunkArena<Pair> arena(2);
    Pair *pair = arena.Create(3u, 4u);
    EXPECT_EQ(pair->a, 3u);
    EXPECT_EQ(pair->b, 4u);
}

TEST(ChunkArenaTest, InjectedGrowthFailureIsStrongAndRetryable)
{
    // The first two chunk growths fail. Each failed Create must leave
    // the arena untouched (no size change, no chunk) and a plain retry
    // must succeed once the window passes.
    FaultPlan plan;
    FaultRule rule;
    rule.site = FaultSite::kAllocFailure;
    rule.until_hit = 2;
    plan.rules.push_back(rule);
    FaultInjector injector(plan);

    ChunkArena<std::uint64_t> arena(2);
    arena.ArmFaultInjector(&injector);
    EXPECT_THROW((void)arena.Create(1u), std::bad_alloc);
    EXPECT_EQ(arena.size(), 0u);
    EXPECT_EQ(arena.chunks(), 0u);
    EXPECT_EQ(arena.MemoryBytes(), 0u);
    EXPECT_THROW((void)arena.Create(1u), std::bad_alloc);
    std::uint64_t *value = arena.Create(7u);  // window passed
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(*value, 7u);
    EXPECT_EQ(arena.size(), 1u);
    EXPECT_EQ(arena.chunks(), 1u);

    // Growth of a *full* arena fails the same way without disturbing
    // existing objects.
    FaultPlan second_plan;
    FaultRule second_rule;
    second_rule.site = FaultSite::kAllocFailure;
    second_rule.until_hit = 1;
    second_plan.rules.push_back(second_rule);
    FaultInjector second_injector(second_plan);
    std::uint64_t *second = arena.Create(8u);  // fills chunk 0
    arena.ArmFaultInjector(&second_injector);
    EXPECT_THROW((void)arena.Create(9u), std::bad_alloc);
    EXPECT_EQ(arena.size(), 2u);
    EXPECT_EQ(*value, 7u);
    EXPECT_EQ(*second, 8u);
    std::uint64_t *third = arena.Create(9u);
    EXPECT_EQ(*third, 9u);
    EXPECT_EQ(arena.chunks(), 2u);

    arena.ArmFaultInjector(nullptr);  // disarm: no further throws
    (void)arena.Create(10u);
    EXPECT_EQ(arena.size(), 4u);
}

}  // namespace
}  // namespace frugal
