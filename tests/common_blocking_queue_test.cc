/** Tests for the bounded MPMC blocking queue. */
#include "common/blocking_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace frugal {
namespace {

TEST(BlockingQueueTest, FifoOrder)
{
    BlockingQueue<int> q(10);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(q.Push(i));
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(q.Pop().value(), i);
}

TEST(BlockingQueueTest, TryPushRespectsCapacity)
{
    BlockingQueue<int> q(2);
    EXPECT_TRUE(q.TryPush(1));
    EXPECT_TRUE(q.TryPush(2));
    EXPECT_FALSE(q.TryPush(3));
    EXPECT_EQ(q.size(), 2u);
}

TEST(BlockingQueueTest, TryPopOnEmpty)
{
    BlockingQueue<int> q(2);
    EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CloseWakesPoppers)
{
    BlockingQueue<int> q(2);
    std::thread popper([&] {
        auto v = q.Pop();
        EXPECT_FALSE(v.has_value());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.Close();
    popper.join();
}

TEST(BlockingQueueTest, CloseDrainsRemainingItems)
{
    BlockingQueue<int> q(4);
    ASSERT_TRUE(q.Push(1));
    ASSERT_TRUE(q.Push(2));
    q.Close();
    EXPECT_FALSE(q.Push(3));
    EXPECT_EQ(q.Pop().value(), 1);
    EXPECT_EQ(q.Pop().value(), 2);
    EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, PopBatchTakesUpToMax)
{
    BlockingQueue<int> q(10);
    for (int i = 0; i < 7; ++i)
        ASSERT_TRUE(q.Push(i));
    auto batch = q.PopBatch(5);
    EXPECT_EQ(batch.size(), 5u);
    EXPECT_EQ(batch[0], 0);
    batch = q.PopBatch(5);
    EXPECT_EQ(batch.size(), 2u);
}

TEST(BlockingQueueTest, MpmcNoLossNoDuplication)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 5000;
    BlockingQueue<int> q(64);
    std::atomic<long> sum{0};
    std::atomic<int> popped{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(q.Push(p * kPerProducer + i));
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            while (true) {
                auto v = q.Pop();
                if (!v.has_value())
                    return;
                sum += *v;
                popped++;
            }
        });
    }
    for (int p = 0; p < kProducers; ++p)
        threads[p].join();
    q.Close();
    for (int c = 0; c < kConsumers; ++c)
        threads[kProducers + c].join();

    const long n = kProducers * kPerProducer;
    EXPECT_EQ(popped.load(), n);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(BlockingQueueTest, PopForTimesOutOnEmpty)
{
    BlockingQueue<int> q(2);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(q.PopFor(std::chrono::milliseconds(20)).has_value());
    EXPECT_GE(std::chrono::steady_clock::now() - start,
              std::chrono::milliseconds(20));
    EXPECT_FALSE(q.closed());  // nullopt meant timeout, not shutdown
}

TEST(BlockingQueueTest, PopForSeesLatePush)
{
    BlockingQueue<int> q(2);
    std::thread pusher([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        ASSERT_TRUE(q.Push(42));
    });
    EXPECT_EQ(q.PopFor(std::chrono::seconds(5)).value(), 42);
    pusher.join();
}

TEST(BlockingQueueTest, PopForDrainsThenSignalsClose)
{
    BlockingQueue<int> q(4);
    ASSERT_TRUE(q.Push(1));
    q.Close();
    EXPECT_EQ(q.PopFor(std::chrono::milliseconds(5)).value(), 1);
    EXPECT_FALSE(q.PopFor(std::chrono::milliseconds(5)).has_value());
    EXPECT_TRUE(q.closed());
}

TEST(BlockingQueueTest, PopBatchForTimesOutEmptyHanded)
{
    BlockingQueue<int> q(4);
    EXPECT_TRUE(q.PopBatchFor(8, std::chrono::milliseconds(10)).empty());
    EXPECT_FALSE(q.closed());
}

TEST(BlockingQueueTest, PopBatchForTakesAvailableItems)
{
    BlockingQueue<int> q(8);
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(q.Push(i));
    const auto batch = q.PopBatchFor(8, std::chrono::seconds(1));
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0], 0);
    EXPECT_EQ(batch[2], 2);
}

TEST(BlockingQueueTest, PopBatchForWakesOnCloseBeforeDeadline)
{
    BlockingQueue<int> q(4);
    const auto start = std::chrono::steady_clock::now();
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        q.Close();
    });
    EXPECT_TRUE(q.PopBatchFor(4, std::chrono::seconds(30)).empty());
    // Close must cut the wait short, not run out the 30 s deadline.
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::seconds(10));
    EXPECT_TRUE(q.closed());
    closer.join();
}

TEST(BlockingQueueTest, TimedPopRacesCloseWithoutLoss)
{
    // A consumer using short timed pops races a producer that pushes one
    // item and immediately closes: the item must never be lost and the
    // consumer must always terminate via closed().
    for (int round = 0; round < 200; ++round) {
        BlockingQueue<int> q(2);
        int received = 0;
        std::thread producer([&] {
            ASSERT_TRUE(q.Push(7));
            q.Close();
        });
        while (true) {
            auto v = q.PopFor(std::chrono::milliseconds(1));
            if (v.has_value()) {
                received += *v;
                continue;
            }
            if (q.closed() && q.size() == 0)
                break;
        }
        producer.join();
        EXPECT_EQ(received, 7) << "round " << round;
    }
}

TEST(BlockingQueueTest, PushForTimesOutOnSaturationAndKeepsItem)
{
    BlockingQueue<std::vector<int>> q(1);
    std::vector<int> first{1};
    ASSERT_TRUE(q.PushFor(first, std::chrono::milliseconds(1)));
    std::vector<int> second{2, 3};
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(q.PushFor(second, std::chrono::milliseconds(20)));
    EXPECT_GE(std::chrono::steady_clock::now() - start,
              std::chrono::milliseconds(20));
    // Failure must not consume: the caller retries with the same item.
    EXPECT_EQ(second.size(), 2u);
    EXPECT_FALSE(q.closed());  // false meant timeout, not shutdown
    EXPECT_FALSE(q.PushFor(second, std::chrono::seconds(0)));
    EXPECT_EQ(q.Pop().value().size(), 1u);
    EXPECT_TRUE(q.PushFor(second, std::chrono::seconds(1)));
    EXPECT_EQ(q.Pop().value().size(), 2u);
}

TEST(BlockingQueueTest, PushForUnblocksOnConcurrentPop)
{
    BlockingQueue<int> q(1);
    int first = 1;
    ASSERT_TRUE(q.PushFor(first, std::chrono::seconds(0)));
    std::thread popper([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        EXPECT_EQ(q.Pop().value(), 1);
    });
    int second = 2;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_TRUE(q.PushFor(second, std::chrono::seconds(30)));
    // The pop must cut the wait short, not run out the deadline.
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::seconds(10));
    popper.join();
    EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BlockingQueueTest, PushForRejectsOnClose)
{
    BlockingQueue<int> q(1);
    int first = 1;
    ASSERT_TRUE(q.PushFor(first, std::chrono::seconds(0)));
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        q.Close();
    });
    int second = 2;
    EXPECT_FALSE(q.PushFor(second, std::chrono::seconds(30)));
    EXPECT_TRUE(q.closed());
    closer.join();
}

TEST(BlockingQueueTest, ThrottledMpmcNoLossNoDuplication)
{
    // The backpressure shape the engine uses: producers loop on a timed
    // PushFor against a deliberately tiny bound while consumers drain.
    // Every element must arrive exactly once and every producer must
    // terminate. Run under TSan via the sanitizer stage of check.sh.
    constexpr int kProducers = 4;
    constexpr int kConsumers = 2;
    constexpr int kPerProducer = 2000;
    BlockingQueue<int> q(4);  // 4x over-subscribed producers
    std::atomic<long> sum{0};
    std::atomic<int> popped{0};
    std::atomic<int> throttles{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                int item = p * kPerProducer + i;
                while (!q.PushFor(item, std::chrono::microseconds(50))) {
                    ASSERT_FALSE(q.closed());
                    // relaxed: monotonic stat counter, read after joins.
                    throttles.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            while (true) {
                auto v = q.Pop();
                if (!v.has_value())
                    return;
                sum += *v;
                popped++;
            }
        });
    }
    for (int p = 0; p < kProducers; ++p)
        threads[p].join();
    q.Close();
    for (int c = 0; c < kConsumers; ++c)
        threads[kProducers + c].join();

    const long n = kProducers * kPerProducer;
    EXPECT_EQ(popped.load(), n);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(BlockingQueueTest, BlockingPushUnblocksOnPop)
{
    BlockingQueue<int> q(1);
    ASSERT_TRUE(q.Push(1));
    std::atomic<bool> pushed{false};
    std::thread pusher([&] {
        ASSERT_TRUE(q.Push(2));
        pushed = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_FALSE(pushed.load());
    EXPECT_EQ(q.Pop().value(), 1);
    pusher.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(q.Pop().value(), 2);
}

}  // namespace
}  // namespace frugal
