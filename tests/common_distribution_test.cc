/**
 * Tests for the workload key distributions, including statistical
 * properties of the Zipf sampler that the paper's skewed workloads
 * (§4.1) depend on.
 */
#include "common/distribution.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace frugal {
namespace {

TEST(UniformDistributionTest, CoversRange)
{
    UniformDistribution dist(100);
    Rng rng(1);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; ++i)
        counts[dist.Sample(rng)]++;
    for (int c : counts)
        EXPECT_GT(c, 0);
}

TEST(UniformDistributionTest, Name)
{
    UniformDistribution dist(10);
    EXPECT_EQ(dist.Name(), "uniform");
    EXPECT_EQ(dist.KeySpace(), 10u);
}

TEST(ZipfDistributionTest, SamplesInRange)
{
    ZipfDistribution dist(1000, 0.99);
    Rng rng(2);
    for (int i = 0; i < 100000; ++i)
        ASSERT_LT(dist.Sample(rng), 1000u);
}

TEST(ZipfDistributionTest, UnscrambledHeadMass)
{
    // Without scrambling, rank 0 is key 0 and should carry ~P(0) mass.
    ZipfDistribution dist(10000, 0.99, /*scramble=*/false);
    Rng rng(3);
    constexpr int kSamples = 200000;
    int zeros = 0;
    for (int i = 0; i < kSamples; ++i)
        zeros += (dist.Sample(rng) == 0);
    const double p0 = dist.RankProbability(0);
    EXPECT_NEAR(static_cast<double>(zeros) / kSamples, p0, 0.25 * p0);
}

TEST(ZipfDistributionTest, SkewOrdersConcentration)
{
    // Higher theta ⇒ more mass on the hottest keys. Measure the fraction
    // of samples covered by the top-1% most frequent keys.
    auto top1_fraction = [](double theta) {
        ZipfDistribution dist(10000, theta, /*scramble=*/true);
        Rng rng(4);
        std::map<Key, int> counts;
        constexpr int kSamples = 200000;
        for (int i = 0; i < kSamples; ++i)
            counts[dist.Sample(rng)]++;
        std::vector<int> freq;
        freq.reserve(counts.size());
        for (auto &[k, c] : counts)
            freq.push_back(c);
        std::sort(freq.rbegin(), freq.rend());
        const std::size_t top = 100;  // 1% of 10000
        long covered = 0;
        for (std::size_t i = 0; i < std::min(top, freq.size()); ++i)
            covered += freq[i];
        return static_cast<double>(covered) / kSamples;
    };

    const double f09 = top1_fraction(0.9);
    const double f099 = top1_fraction(0.99);
    EXPECT_GT(f09, 0.3);   // zipf-0.9 is clearly skewed
    EXPECT_GT(f099, f09);  // zipf-0.99 more so
}

TEST(ZipfDistributionTest, RankProbabilitiesSumToRoughlyOne)
{
    ZipfDistribution dist(1000, 0.9);
    double total = 0.0;
    for (std::uint64_t r = 0; r < 1000; ++r)
        total += dist.RankProbability(r);
    EXPECT_NEAR(total, 1.0, 1e-3);
}

TEST(ZipfDistributionTest, RankProbabilityMonotone)
{
    ZipfDistribution dist(1000, 0.99);
    for (std::uint64_t r = 1; r < 1000; ++r)
        ASSERT_LE(dist.RankProbability(r), dist.RankProbability(r - 1));
}

TEST(ZipfDistributionTest, Name)
{
    ZipfDistribution d1(10, 0.9);
    EXPECT_EQ(d1.Name(), "zipf-0.9");
    ZipfDistribution d2(10, 0.99);
    EXPECT_EQ(d2.Name(), "zipf-0.99");
}

TEST(DistributionFactoryTest, ByKind)
{
    auto u = MakeDistribution(DistributionKind::kUniform, 10);
    EXPECT_EQ(u->Name(), "uniform");
    auto z = MakeDistribution(DistributionKind::kZipf, 10, 0.9);
    EXPECT_EQ(z->Name(), "zipf-0.9");
}

TEST(DistributionFactoryTest, ByName)
{
    auto u = MakeDistributionByName("uniform", 10);
    EXPECT_EQ(u->KeySpace(), 10u);
    auto z = MakeDistributionByName("zipf-0.99", 10);
    EXPECT_EQ(z->Name(), "zipf-0.99");
}

TEST(ZipfDistributionTest, DeterministicGivenSeed)
{
    ZipfDistribution dist(1 << 20, 0.9);
    Rng a(9), b(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(dist.Sample(a), dist.Sample(b));
}

}  // namespace
}  // namespace frugal
