/**
 * @file
 * FlatMap unit tests: probe-chain behaviour under forced collisions,
 * growth/rehash, backward-shift deletion, iteration, and a randomized
 * model-equivalence check against std::unordered_map.
 */
#include "common/flat_map.h"

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace frugal {
namespace {

TEST(FlatMapTest, EmptyMapFindsNothing)
{
    FlatMap<std::uint64_t, std::uint32_t> map;
    EXPECT_EQ(map.size(), 0u);
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.Find(7), nullptr);
    EXPECT_FALSE(map.Contains(7));
    EXPECT_FALSE(map.Erase(7));
}

TEST(FlatMapTest, TryEmplaceInsertsOnceAndFindsAgain)
{
    FlatMap<std::uint64_t, std::uint32_t> map;
    auto [value, inserted] = map.TryEmplace(42, 7u);
    ASSERT_NE(value, nullptr);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*value, 7u);

    auto [again, second] = map.TryEmplace(42, 99u);
    EXPECT_FALSE(second);
    EXPECT_EQ(*again, 7u);  // existing value untouched
    EXPECT_EQ(map.size(), 1u);

    const std::uint32_t *found = map.Find(42);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, 7u);
}

TEST(FlatMapTest, PutOverwrites)
{
    FlatMap<std::uint64_t, std::uint32_t> map;
    EXPECT_TRUE(map.Put(1, 10));
    EXPECT_FALSE(map.Put(1, 20));
    EXPECT_EQ(*map.Find(1), 20u);
    EXPECT_EQ(map.size(), 1u);
}

/** Finds `n` distinct keys whose home slot equals `home` for a table of
 *  `capacity` slots (capacity must match the map's internal growth
 *  schedule for the collision to be real — asserted loosely below by
 *  checking the probe chain actually formed). */
std::vector<std::uint64_t>
CollidingKeys(std::size_t capacity, std::size_t home, std::size_t n)
{
    // The map homes slots on the TOP log2(capacity) hash bits.
    unsigned shift = 64;
    for (std::size_t c = capacity; c > 1; c >>= 1)
        --shift;
    std::vector<std::uint64_t> keys;
    for (std::uint64_t candidate = 0; keys.size() < n; ++candidate) {
        if ((MixHash64(candidate) >> shift) == home)
            keys.push_back(candidate);
    }
    return keys;
}

TEST(FlatMapTest, CollisionChainResolvesAllKeys)
{
    // Force an 8-deep chain on one home slot of the minimum table (16
    // slots, grows at 14 = 16*7/8): insert 8 colliders plus nothing
    // else, so every probe walk crosses the run.
    const auto keys = CollidingKeys(16, 3, 8);
    FlatMap<std::uint64_t, std::uint32_t> map;
    for (std::uint32_t i = 0; i < keys.size(); ++i)
        EXPECT_TRUE(map.TryEmplace(keys[i], i).second);
    EXPECT_EQ(map.size(), keys.size());
    EXPECT_GE(map.MaxProbeLength(), keys.size());
    for (std::uint32_t i = 0; i < keys.size(); ++i) {
        const std::uint32_t *value = map.Find(keys[i]);
        ASSERT_NE(value, nullptr) << "collider " << i;
        EXPECT_EQ(*value, i);
    }
    // Erasing from the middle backward-shifts the rest of the run.
    EXPECT_TRUE(map.Erase(keys[3]));
    EXPECT_EQ(map.Find(keys[3]), nullptr);
    for (std::uint32_t i = 0; i < keys.size(); ++i) {
        if (i == 3)
            continue;
        ASSERT_NE(map.Find(keys[i]), nullptr) << "collider " << i;
        EXPECT_EQ(*map.Find(keys[i]), i);
    }
}

TEST(FlatMapTest, GrowthRehashKeepsEveryElement)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    const std::uint64_t n = 10'000;  // many doublings past kMinCapacity
    for (std::uint64_t k = 0; k < n; ++k)
        ASSERT_TRUE(map.TryEmplace(k * 2654435761ULL, k).second);
    EXPECT_EQ(map.size(), n);
    // Load factor stays ≤ 7/8 across growth.
    EXPECT_LE(map.size() * 8, map.capacity() * 7);
    for (std::uint64_t k = 0; k < n; ++k) {
        const std::uint64_t *value = map.Find(k * 2654435761ULL);
        ASSERT_NE(value, nullptr) << "key " << k;
        EXPECT_EQ(*value, k);
    }
}

TEST(FlatMapTest, ReserveAvoidsRehash)
{
    FlatMap<std::uint64_t, std::uint32_t> map;
    map.Reserve(1000);
    const std::size_t capacity = map.capacity();
    EXPECT_GE(capacity * 7, 1000u * 8);  // fits without growth
    for (std::uint64_t k = 0; k < 1000; ++k)
        map.TryEmplace(k, 0u);
    EXPECT_EQ(map.capacity(), capacity);
}

TEST(FlatMapTest, EraseBackwardShiftLeavesNoGhosts)
{
    // Insert, erase everything, re-insert: a tombstone scheme would
    // degrade or misreport; backward shift must leave a clean table.
    FlatMap<std::uint64_t, std::uint32_t> map;
    for (std::uint64_t k = 0; k < 500; ++k)
        map.TryEmplace(k, static_cast<std::uint32_t>(k));
    for (std::uint64_t k = 0; k < 500; ++k)
        EXPECT_TRUE(map.Erase(k));
    EXPECT_EQ(map.size(), 0u);
    for (std::uint64_t k = 0; k < 500; ++k)
        EXPECT_EQ(map.Find(k), nullptr);
    for (std::uint64_t k = 0; k < 500; ++k)
        EXPECT_TRUE(map.TryEmplace(k, 1u).second);
    EXPECT_EQ(map.size(), 500u);
}

TEST(FlatMapTest, ForEachVisitsEveryLiveElementOnce)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> model;
    for (std::uint64_t k = 0; k < 300; ++k) {
        map.TryEmplace(k * 13, k);
        model.emplace(k * 13, k);
    }
    for (std::uint64_t k = 0; k < 300; k += 3) {
        map.Erase(k * 13);
        model.erase(k * 13);
    }
    std::unordered_map<std::uint64_t, std::uint64_t> seen;
    map.ForEach([&](std::uint64_t key, std::uint64_t value) {
        EXPECT_TRUE(seen.emplace(key, value).second)
            << "key " << key << " visited twice";
    });
    EXPECT_EQ(seen, model);
}

TEST(FlatMapTest, ClearKeepsCapacity)
{
    FlatMap<std::uint64_t, std::uint32_t> map;
    for (std::uint64_t k = 0; k < 100; ++k)
        map.TryEmplace(k, 0u);
    const std::size_t capacity = map.capacity();
    map.Clear();
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.capacity(), capacity);
    EXPECT_EQ(map.Find(5), nullptr);
}

TEST(FlatMapTest, RandomizedModelEquivalence)
{
    std::mt19937_64 rng(20260806);
    FlatMap<std::uint64_t, std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> model;
    // Small key universe so insert/erase/find constantly collide on the
    // same keys and deletion chains get exercised.
    std::uniform_int_distribution<std::uint64_t> key_dist(0, 512);
    for (int op = 0; op < 200'000; ++op) {
        const std::uint64_t key = key_dist(rng);
        switch (op % 4) {
        case 0: {
            const std::uint64_t value = rng();
            EXPECT_EQ(map.TryEmplace(key, value).second,
                      model.emplace(key, value).second);
            break;
        }
        case 1: {
            const std::uint64_t value = rng();
            map.Put(key, value);
            model[key] = value;
            break;
        }
        case 2:
            EXPECT_EQ(map.Erase(key), model.erase(key) > 0);
            break;
        default: {
            const std::uint64_t *value = map.Find(key);
            auto it = model.find(key);
            if (it == model.end()) {
                EXPECT_EQ(value, nullptr);
            } else {
                ASSERT_NE(value, nullptr);
                EXPECT_EQ(*value, it->second);
            }
        }
        }
        ASSERT_EQ(map.size(), model.size());
    }
}

TEST(FlatMapTest, PointerValues)
{
    int a = 1, b = 2;
    FlatMap<std::uint64_t, int *> map;
    map.TryEmplace(1, &a);
    map.TryEmplace(2, &b);
    EXPECT_EQ(**map.Find(1), 1);
    EXPECT_EQ(**map.Find(2), 2);
}

TEST(FlatMapTest, InjectedGrowthFailureIsStrongAndRetryable)
{
    FaultPlan plan;
    FaultRule rule;
    rule.site = FaultSite::kAllocFailure;
    rule.until_hit = 1;
    plan.rules.push_back(rule);

    // Reserve: a failing planned growth leaves the map empty and
    // reusable.
    {
        FaultInjector injector(plan);
        FlatMap<std::uint64_t, std::uint32_t> map;
        map.ArmFaultInjector(&injector);
        EXPECT_THROW(map.Reserve(1000), std::bad_alloc);
        EXPECT_EQ(map.size(), 0u);
        EXPECT_EQ(map.capacity(), 0u);
        map.Reserve(1000);  // window passed: retry succeeds
        EXPECT_GE(map.capacity(), 1000u);
    }

    // Load-factor growth inside TryEmplace: the element whose insert
    // triggered the failed growth is NOT inserted, everything already
    // present survives, and retrying the same insert succeeds.
    {
        FlatMap<std::uint64_t, std::uint32_t> map;
        std::uint64_t key = 0;
        // Fill until the *next* insert must grow.
        while ((map.size() + 1) * 8 <= map.capacity() * 7 ||
               map.capacity() == 0) {
            map.TryEmplace(key, static_cast<std::uint32_t>(key));
            ++key;
        }
        const std::size_t before_size = map.size();
        const std::size_t before_cap = map.capacity();
        FaultInjector injector(plan);
        map.ArmFaultInjector(&injector);
        EXPECT_THROW(map.TryEmplace(key, 99u), std::bad_alloc);
        EXPECT_EQ(map.size(), before_size);
        EXPECT_EQ(map.capacity(), before_cap);
        EXPECT_EQ(map.Find(key), nullptr);
        for (std::uint64_t k = 0; k < key; ++k) {
            ASSERT_NE(map.Find(k), nullptr) << "lost key " << k;
            EXPECT_EQ(*map.Find(k), static_cast<std::uint32_t>(k));
        }
        auto [value, inserted] = map.TryEmplace(key, 99u);  // retry
        EXPECT_TRUE(inserted);
        EXPECT_EQ(*value, 99u);
        EXPECT_GT(map.capacity(), before_cap);
    }
}

}  // namespace
}  // namespace frugal
