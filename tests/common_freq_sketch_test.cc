/** Tests for the decayed count-min frequency sketch (DESIGN.md §14):
 *  error bounds under adversarial collisions, aging/halving behaviour,
 *  seed determinism, and model-equivalence against an exact counter —
 *  the same idiom as common_flat_map_test. */
#include "common/freq_sketch.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"

namespace frugal {
namespace {

TEST(FreqSketchTest, ModelEquivalenceAgainstExactCounter)
{
    // Small population, generously sized table: no 4-row collision is
    // plausible, so the sketch must agree with an exact hash-map
    // counter everywhere below the saturation ceiling.
    FreqSketch sketch(1024, /*seed=*/7);
    std::map<Key, std::uint32_t> exact;

    Rng rng(123);
    for (int i = 0; i < 500; ++i) {
        const Key k = rng.NextBounded(32);
        if (exact[k] >= FreqSketch::kMaxEstimate)
            continue;  // stay below saturation so equality is exact
        sketch.Add(k);
        ++exact[k];
    }
    for (const auto &[key, count] : exact)
        EXPECT_EQ(sketch.Estimate(key), count) << "key " << key;
    EXPECT_EQ(sketch.Estimate(/*key=*/999'999), 0u);  // never added
}

TEST(FreqSketchTest, NeverUnderestimatesUnderAdversarialCollisions)
{
    // Tiny table (64 counters per row), 300 distinct keys — collisions
    // everywhere. Count-min with conservative update may overestimate
    // but can never underestimate an un-aged, un-saturated count.
    FreqSketch sketch(8, /*seed=*/11);
    constexpr std::uint32_t kTrueCount = 3;
    constexpr Key kKeys = 300;  // 900 adds < sample_period (1024)
    for (std::uint32_t round = 0; round < kTrueCount; ++round)
        for (Key k = 0; k < kKeys; ++k)
            sketch.Add(k);
    ASSERT_EQ(sketch.agings(), 0u);
    for (Key k = 0; k < kKeys; ++k) {
        EXPECT_GE(sketch.Estimate(k), kTrueCount) << "key " << k;
        EXPECT_LE(sketch.Estimate(k), FreqSketch::kMaxEstimate);
    }
}

TEST(FreqSketchTest, CountersSaturateAtCeiling)
{
    FreqSketch sketch(64, /*seed=*/3);
    for (int i = 0; i < 100; ++i)
        sketch.Add(42);
    EXPECT_EQ(sketch.Estimate(42), FreqSketch::kMaxEstimate);
}

TEST(FreqSketchTest, AgingHalvesEstimates)
{
    FreqSketch sketch(1024, /*seed=*/5);
    for (int i = 0; i < 8; ++i)
        sketch.Add(1);
    for (int i = 0; i < 3; ++i)
        sketch.Add(2);
    ASSERT_EQ(sketch.Estimate(1), 8u);
    ASSERT_EQ(sketch.Estimate(2), 3u);

    sketch.Age();
    EXPECT_EQ(sketch.Estimate(1), 4u);
    EXPECT_EQ(sketch.Estimate(2), 1u);  // floor(3/2)
    sketch.Age();
    EXPECT_EQ(sketch.Estimate(1), 2u);
    EXPECT_EQ(sketch.agings(), 2u);

    // Relative order of hot vs cold survives the decay.
    EXPECT_GT(sketch.Estimate(1), sketch.Estimate(2));
}

TEST(FreqSketchTest, AutomaticAgingAfterSamplePeriod)
{
    FreqSketch sketch(8, /*seed=*/9);  // sample period floors at 1024
    ASSERT_EQ(sketch.sample_period(), 1024u);
    for (std::uint64_t i = 0; i < 1023; ++i)
        sketch.Add(i);
    EXPECT_EQ(sketch.agings(), 0u);
    sketch.Add(0);  // the 1024th sample closes the epoch
    EXPECT_EQ(sketch.agings(), 1u);
    // A fresh epoch starts counting from zero, not mid-way.
    for (std::uint64_t i = 0; i < 1023; ++i)
        sketch.Add(i);
    EXPECT_EQ(sketch.agings(), 1u);
}

TEST(FreqSketchTest, DeterministicAcrossIdenticalSeeds)
{
    FreqSketch a(64, /*seed=*/77);
    FreqSketch b(64, /*seed=*/77);
    Rng rng(42);
    std::vector<Key> stream(5000);
    for (Key &k : stream) {
        k = rng.NextBounded(512);
        a.Add(k);
        b.Add(k);
    }
    ASSERT_EQ(a.agings(), b.agings());
    for (Key k = 0; k < 512; ++k)
        ASSERT_EQ(a.Estimate(k), b.Estimate(k)) << "key " << k;
}

TEST(FreqSketchTest, ResetClearsCountsAndAgingClock)
{
    FreqSketch sketch(64, /*seed=*/1);
    for (int i = 0; i < 10; ++i)
        sketch.Add(5);
    sketch.Age();
    ASSERT_GT(sketch.Estimate(5), 0u);
    sketch.Reset();
    EXPECT_EQ(sketch.Estimate(5), 0u);
    EXPECT_EQ(sketch.agings(), 0u);
}

TEST(FreqSketchTest, SizingIsPowerOfTwoAndAccounted)
{
    FreqSketch sketch(100, /*seed=*/1);
    // ≥ 2× expected keys, rounded up to a power of two.
    EXPECT_EQ(sketch.width(), 256u);
    EXPECT_EQ(sketch.width() & (sketch.width() - 1), 0u);
    // 4 rows × width nibbles, two per byte.
    EXPECT_EQ(sketch.MemoryBytes(),
              FreqSketch::kRows * sketch.width() / 2);
}

}  // namespace
}  // namespace frugal
