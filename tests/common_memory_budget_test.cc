/** Tests for the memory-pressure monitor (common/memory_budget.h). */
#include "common/memory_budget.h"

#include <gtest/gtest.h>

namespace frugal {
namespace {

TEST(MemoryBudgetTest, ZeroBudgetNeverClassifies)
{
    MemoryBudget budget(0);
    budget.Publish(MemoryComponent::kArena, 1u << 30);
    budget.Publish(MemoryComponent::kCache, 1u << 30);
    EXPECT_EQ(budget.Evaluate(), PressureStage::kNormal);
    EXPECT_EQ(budget.stage(), PressureStage::kNormal);
    EXPECT_EQ(budget.transitions(), 0u);
}

TEST(MemoryBudgetTest, GaugesOverwriteAndSum)
{
    MemoryBudget budget(1000);
    budget.Publish(MemoryComponent::kArena, 100);
    budget.Publish(MemoryComponent::kArena, 40);  // gauge, not counter
    budget.Publish(MemoryComponent::kFlatMap, 10);
    budget.Publish(MemoryComponent::kCache, 20);
    budget.Publish(MemoryComponent::kQueue, 30);
    EXPECT_EQ(budget.bytes(MemoryComponent::kArena), 40u);
    EXPECT_EQ(budget.TotalBytes(), 100u);
}

TEST(MemoryBudgetTest, StagesEngageAtThresholds)
{
    MemoryBudget budget(1000);
    budget.Publish(MemoryComponent::kArena, 699);
    EXPECT_EQ(budget.Evaluate(), PressureStage::kNormal);
    budget.Publish(MemoryComponent::kArena, 700);
    EXPECT_EQ(budget.Evaluate(), PressureStage::kElevated);
    budget.Publish(MemoryComponent::kArena, 899);
    EXPECT_EQ(budget.Evaluate(), PressureStage::kElevated);
    budget.Publish(MemoryComponent::kArena, 900);
    EXPECT_EQ(budget.Evaluate(), PressureStage::kCritical);
    EXPECT_EQ(budget.transitions(), 2u);
    EXPECT_EQ(budget.peak_stage(), 2u);
    EXPECT_EQ(budget.peak_total_bytes(), 900u);
}

TEST(MemoryBudgetTest, HysteresisPreventsFlapping)
{
    MemoryBudget budget(1000);
    budget.Publish(MemoryComponent::kArena, 950);
    EXPECT_EQ(budget.Evaluate(), PressureStage::kCritical);
    // Just below the engage threshold: critical holds (clears at 80%).
    budget.Publish(MemoryComponent::kArena, 850);
    EXPECT_EQ(budget.Evaluate(), PressureStage::kCritical);
    budget.Publish(MemoryComponent::kArena, 799);
    EXPECT_EQ(budget.Evaluate(), PressureStage::kElevated);
    // Elevated likewise holds until below 60%.
    budget.Publish(MemoryComponent::kArena, 650);
    EXPECT_EQ(budget.Evaluate(), PressureStage::kElevated);
    budget.Publish(MemoryComponent::kArena, 599);
    EXPECT_EQ(budget.Evaluate(), PressureStage::kNormal);
    EXPECT_EQ(budget.transitions(), 3u);
}

TEST(MemoryBudgetTest, MidRunBudgetSqueezeReclassifies)
{
    MemoryBudget budget(10000);
    budget.Publish(MemoryComponent::kCache, 5000);
    EXPECT_EQ(budget.Evaluate(), PressureStage::kNormal);
    // An operator (or co-tenant) halves the budget: same bytes, new
    // classification at the next Evaluate.
    budget.SetBudget(5000);
    EXPECT_EQ(budget.Evaluate(), PressureStage::kCritical);
    EXPECT_EQ(budget.budget_bytes(), 5000u);
}

TEST(MemoryBudgetTest, NamesAreStable)
{
    EXPECT_STREQ(PressureStageName(PressureStage::kNormal), "normal");
    EXPECT_STREQ(PressureStageName(PressureStage::kElevated), "elevated");
    EXPECT_STREQ(PressureStageName(PressureStage::kCritical), "critical");
    EXPECT_STREQ(MemoryComponentName(MemoryComponent::kArena), "arena");
    EXPECT_STREQ(MemoryComponentName(MemoryComponent::kQueue), "queue");
}

}  // namespace
}  // namespace frugal
