/** Tests for the unified retry policy (common/retry.h). */
#include "common/retry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace frugal {
namespace {

using std::chrono::microseconds;

RetryPolicy
TestPolicy()
{
    RetryPolicy policy;
    policy.max_attempts = 5;
    policy.initial_backoff = microseconds(2);
    policy.multiplier = 2.0;
    policy.max_backoff = microseconds(10);
    return policy;
}

TEST(RetryBackoffTest, GrowsExponentiallyAndCaps)
{
    const RetryPolicy policy = TestPolicy();
    EXPECT_EQ(RetryBackoff(policy, 1, 0), microseconds(2));
    EXPECT_EQ(RetryBackoff(policy, 1, 1), microseconds(4));
    EXPECT_EQ(RetryBackoff(policy, 1, 2), microseconds(8));
    EXPECT_EQ(RetryBackoff(policy, 1, 3), microseconds(10));  // capped
    EXPECT_EQ(RetryBackoff(policy, 1, 20), microseconds(10));
}

TEST(RetryBackoffTest, JitterIsDeterministicAndBounded)
{
    RetryPolicy policy = TestPolicy();
    policy.jitter = 0.5;  // ± 25% of the base backoff
    for (std::uint64_t seed : {0ull, 7ull, 12345ull}) {
        for (int attempt = 0; attempt < 6; ++attempt) {
            const auto a = RetryBackoff(policy, seed, attempt);
            const auto b = RetryBackoff(policy, seed, attempt);
            EXPECT_EQ(a, b) << "jitter must be pure in (seed, attempt)";
            RetryPolicy plain = policy;
            plain.jitter = 0.0;
            const double base = static_cast<double>(
                RetryBackoff(plain, seed, attempt).count());
            EXPECT_GE(static_cast<double>(a.count()), base * 0.75 - 1.0);
            EXPECT_LE(static_cast<double>(a.count()), base * 1.25 + 1.0);
        }
    }
    // Different seeds decorrelate: at least one attempt differs.
    bool differs = false;
    for (int attempt = 0; attempt < 6 && !differs; ++attempt) {
        differs = RetryBackoff(policy, 1, attempt) !=
                  RetryBackoff(policy, 2, attempt);
    }
    EXPECT_TRUE(differs);
}

TEST(RetryWithBackoffTest, FirstTrySuccessSleepsNothing)
{
    int sleeps = 0;
    const RetryOutcome outcome = RetryWithBackoff(
        TestPolicy(), 1, [] { return true; },
        [&](microseconds) { ++sleeps; });
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.status, RetryStatus::kSuccess);
    EXPECT_EQ(outcome.attempts, 1);
    EXPECT_EQ(outcome.slept, microseconds(0));
    EXPECT_EQ(sleeps, 0);
}

TEST(RetryWithBackoffTest, RecoversAfterTransientFailures)
{
    std::vector<microseconds> sleeps;
    int calls = 0;
    const RetryOutcome outcome = RetryWithBackoff(
        TestPolicy(), 1, [&] { return ++calls >= 3; },
        [&](microseconds backoff) { sleeps.push_back(backoff); });
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.attempts, 3);
    ASSERT_EQ(sleeps.size(), 2u);  // no sleep after the final success
    EXPECT_EQ(sleeps[0], microseconds(2));
    EXPECT_EQ(sleeps[1], microseconds(4));
    EXPECT_EQ(outcome.slept, microseconds(6));
}

TEST(RetryWithBackoffTest, ExhaustsAttemptsWithoutTrailingSleep)
{
    int calls = 0;
    int sleeps = 0;
    const RetryOutcome outcome = RetryWithBackoff(
        TestPolicy(), 1, [&] { ++calls; return false; },
        [&](microseconds) { ++sleeps; });
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status, RetryStatus::kAttemptsExhausted);
    EXPECT_EQ(outcome.attempts, 5);
    EXPECT_EQ(calls, 5);
    // A failed *last* attempt is terminal; sleeping after it would just
    // delay the caller's escalation.
    EXPECT_EQ(sleeps, 4);
}

TEST(RetryWithBackoffTest, DeadlineBoundsCumulativeBackoff)
{
    RetryPolicy policy = TestPolicy();
    policy.max_attempts = 100;
    policy.deadline = microseconds(7);  // allows 2 + 4, not 2 + 4 + 8
    int calls = 0;
    const RetryOutcome outcome = RetryWithBackoff(
        policy, 1, [&] { ++calls; return false; }, [](microseconds) {});
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status, RetryStatus::kDeadlineExceeded);
    EXPECT_EQ(calls, 3);
    EXPECT_LE(outcome.slept, policy.deadline);
}

TEST(RetryWithBackoffTest, StatusNamesAreStable)
{
    EXPECT_STREQ(RetryStatusName(RetryStatus::kSuccess), "success");
    EXPECT_STREQ(RetryStatusName(RetryStatus::kAttemptsExhausted),
                 "attempts-exhausted");
    EXPECT_STREQ(RetryStatusName(RetryStatus::kDeadlineExceeded),
                 "deadline-exceeded");
}

}  // namespace
}  // namespace frugal
