/** Tests for the xoshiro256** generator and its helpers. */
#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace frugal {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += (a() == b());
    EXPECT_LT(same, 5);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 100000; ++i) {
        const double x = rng.NextDouble();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
    }
}

TEST(RngTest, NextDoubleMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    constexpr int kSamples = 200000;
    for (int i = 0; i < kSamples; ++i)
        sum += rng.NextDouble();
    EXPECT_NEAR(sum / kSamples, 0.5, 0.005);
}

TEST(RngTest, NextBoundedStaysInRange)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL,
                                (1ULL << 40) + 17}) {
        for (int i = 0; i < 10000; ++i)
            ASSERT_LT(rng.NextBounded(bound), bound);
    }
}

TEST(RngTest, NextBoundedIsRoughlyUniform)
{
    Rng rng(5);
    constexpr std::uint64_t kBound = 10;
    constexpr int kSamples = 100000;
    std::vector<int> counts(kBound, 0);
    for (int i = 0; i < kSamples; ++i)
        counts[rng.NextBounded(kBound)]++;
    for (std::uint64_t v = 0; v < kBound; ++v) {
        EXPECT_NEAR(counts[v], kSamples / kBound,
                    0.05 * kSamples / kBound)
            << "value " << v;
    }
}

TEST(RngTest, GaussianMomentsMatch)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    constexpr int kSamples = 200000;
    for (int i = 0; i < kSamples; ++i) {
        const double x = rng.NextGaussian(2.0, 3.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / kSamples;
    const double var = sq / kSamples - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(RngTest, MixHash64IsInjectiveOnSmallDomain)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 100000; ++i)
        seen.insert(MixHash64(i));
    EXPECT_EQ(seen.size(), 100000u);
}

TEST(RngTest, SplitMix64AdvancesState)
{
    std::uint64_t s = 0;
    const std::uint64_t a = SplitMix64(s);
    const std::uint64_t b = SplitMix64(s);
    EXPECT_NE(a, b);
    EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace frugal
