/** Tests for StatAccumulator and Histogram. */
#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace frugal {
namespace {

TEST(StatAccumulatorTest, EmptyIsZero)
{
    StatAccumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.min(), 0.0);
    EXPECT_EQ(acc.max(), 0.0);
    EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(StatAccumulatorTest, BasicMoments)
{
    StatAccumulator acc;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
        acc.Add(x);
    EXPECT_EQ(acc.count(), 5u);
    EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 5.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 15.0);
    EXPECT_NEAR(acc.variance(), 2.5, 1e-12);  // sample variance
}

TEST(StatAccumulatorTest, MergeMatchesSequential)
{
    Rng rng(17);
    StatAccumulator whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.NextGaussian(5, 2);
        whole.Add(x);
        (i % 2 ? left : right).Add(x);
    }
    left.Merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(StatAccumulatorTest, MergeWithEmpty)
{
    StatAccumulator a, b;
    a.Add(1.0);
    a.Merge(b);  // no-op
    EXPECT_EQ(a.count(), 1u);
    b.Merge(a);  // adopt
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(HistogramTest, PercentilesOrdered)
{
    Histogram h;
    Rng rng(23);
    for (int i = 0; i < 10000; ++i)
        h.Add(1e-6 * (1 + rng.NextBounded(1000)));
    EXPECT_LE(h.Percentile(50), h.Percentile(90));
    EXPECT_LE(h.Percentile(90), h.Percentile(99));
    EXPECT_LE(h.Percentile(99), h.max());
}

TEST(HistogramTest, MedianRoughlyCorrect)
{
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.Add(static_cast<double>(i));
    // Log-bucketed, so allow generous tolerance (one bucket = 25%).
    EXPECT_NEAR(h.Percentile(50), 500.0, 150.0);
}

TEST(HistogramTest, ResetClears)
{
    Histogram h;
    h.Add(1.0);
    h.Reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.Percentile(99), 0.0);
}

}  // namespace
}  // namespace frugal
