/** Tests for StatAccumulator and Histogram. */
#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace frugal {
namespace {

TEST(StatAccumulatorTest, EmptyIsZero)
{
    StatAccumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.min(), 0.0);
    EXPECT_EQ(acc.max(), 0.0);
    EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(StatAccumulatorTest, BasicMoments)
{
    StatAccumulator acc;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
        acc.Add(x);
    EXPECT_EQ(acc.count(), 5u);
    EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 5.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 15.0);
    EXPECT_NEAR(acc.variance(), 2.5, 1e-12);  // sample variance
}

TEST(StatAccumulatorTest, MergeMatchesSequential)
{
    Rng rng(17);
    StatAccumulator whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.NextGaussian(5, 2);
        whole.Add(x);
        (i % 2 ? left : right).Add(x);
    }
    left.Merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(StatAccumulatorTest, MergeWithEmpty)
{
    StatAccumulator a, b;
    a.Add(1.0);
    a.Merge(b);  // no-op
    EXPECT_EQ(a.count(), 1u);
    b.Merge(a);  // adopt
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(HistogramTest, PercentilesOrdered)
{
    Histogram h;
    Rng rng(23);
    for (int i = 0; i < 10000; ++i)
        h.Add(1e-6 * (1 + rng.NextBounded(1000)));
    EXPECT_LE(h.Percentile(50), h.Percentile(90));
    EXPECT_LE(h.Percentile(90), h.Percentile(99));
    EXPECT_LE(h.Percentile(99), h.max());
}

TEST(HistogramTest, MedianRoughlyCorrect)
{
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.Add(static_cast<double>(i));
    // Log-bucketed (5% buckets) with within-bucket interpolation: the
    // median of 1..1000 should land well within one bucket of 500.
    EXPECT_NEAR(h.Percentile(50), 500.0, 30.0);
}

TEST(HistogramTest, NearbyTailPercentilesAreDistinct)
{
    // The pre-fix 25% buckets quantized p95/p99 of realistic latency
    // spreads onto one bucket boundary; 5% buckets + interpolation must
    // keep them apart and ordered for a distribution with a real tail.
    Histogram h;
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        const double base = 100e-6 * (1 + 0.3 * rng.NextDouble());
        // A 5% heavy tail stretching to ~10x.
        const double x =
            rng.NextDouble() < 0.05 ? base * (2 + 8 * rng.NextDouble())
                                    : base;
        h.Add(x);
    }
    const double p50 = h.Percentile(50);
    const double p95 = h.Percentile(95);
    const double p99 = h.Percentile(99);
    EXPECT_LT(p50, p95);
    EXPECT_LT(p95, p99);
    // The tail must be visibly stretched, not collapsed onto p50's
    // bucket: p99 sits in the 2x..10x outlier band.
    EXPECT_GT(p99, p50 * 1.5);
}

TEST(HistogramTest, SingleValueReportsExactEndpoints)
{
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.Add(3.5e-3);
    // Interpolation is clamped to observed min/max, so a degenerate
    // distribution reports the exact value at every percentile.
    EXPECT_DOUBLE_EQ(h.Percentile(1), 3.5e-3);
    EXPECT_DOUBLE_EQ(h.Percentile(50), 3.5e-3);
    EXPECT_DOUBLE_EQ(h.Percentile(99.9), 3.5e-3);
}

TEST(HistogramTest, InterpolationIsMonotoneInP)
{
    Histogram h;
    Rng rng(31);
    for (int i = 0; i < 5000; ++i)
        h.Add(1e-5 * (1 + rng.NextBounded(5000)));
    double prev = 0.0;
    for (double p = 1; p <= 100; p += 0.5) {
        const double v = h.Percentile(p);
        EXPECT_GE(v, prev) << "p=" << p;
        prev = v;
    }
}

TEST(HistogramTest, ResetClears)
{
    Histogram h;
    h.Add(1.0);
    h.Reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.Percentile(99), 0.0);
}

}  // namespace
}  // namespace frugal
