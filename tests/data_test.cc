/** Tests for dataset specs (Table 2), generators, and traces. */
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "data/dataset_spec.h"
#include "data/kg_dataset.h"
#include "data/rec_dataset.h"
#include "data/trace.h"

namespace frugal {
namespace {

TEST(DatasetSpecTest, AllSixDatasetsPresent)
{
    const auto &specs = AllDatasetSpecs();
    ASSERT_EQ(specs.size(), 6u);
    std::set<std::string> names;
    for (const auto &s : specs)
        names.insert(s.name);
    for (const char *expected : {"FB15k", "Freebase", "WikiKG", "Avazu",
                                 "Criteo", "CriteoTB"}) {
        EXPECT_TRUE(names.count(expected)) << expected;
    }
}

TEST(DatasetSpecTest, Table2StatisticsMatchPaper)
{
    const DatasetSpec &avazu = DatasetByName("Avazu");
    EXPECT_EQ(avazu.n_features, 22u);
    EXPECT_EQ(avazu.n_ids, 49'000'000u);
    EXPECT_EQ(avazu.embedding_dim, 32u);

    const DatasetSpec &freebase = DatasetByName("Freebase");
    EXPECT_EQ(freebase.n_relations, 14'800u);
    EXPECT_EQ(freebase.embedding_dim, 400u);
    EXPECT_EQ(freebase.default_batch, 2000u);

    const DatasetSpec &criteo_tb = DatasetByName("CriteoTB");
    EXPECT_EQ(criteo_tb.n_ids, 882'000'000u);
}

TEST(DatasetSpecTest, ScalingPreservesStructure)
{
    const DatasetSpec scaled = DatasetByName("Avazu").Scaled(1000.0);
    EXPECT_EQ(scaled.n_features, 22u);
    EXPECT_EQ(scaled.n_ids, 49'000u);
    EXPECT_EQ(scaled.model_size_bytes,
              scaled.n_ids * scaled.embedding_dim * sizeof(float));
}

TEST(DatasetSpecTest, KeySpaceByKind)
{
    const DatasetSpec kg = DatasetByName("FB15k");
    EXPECT_EQ(kg.KeySpace(), kg.n_vertices + kg.n_relations);
    const DatasetSpec rec = DatasetByName("Criteo");
    EXPECT_EQ(rec.KeySpace(), rec.n_ids);
}

TEST(RecDatasetTest, FieldsPartitionKeySpace)
{
    const DatasetSpec spec = DatasetByName("Avazu").Scaled(10000.0);
    RecDatasetGenerator gen(spec, 1);
    EXPECT_EQ(gen.n_features(), 22u);
    std::uint64_t total = 0;
    for (std::uint32_t f = 0; f < gen.n_features(); ++f) {
        EXPECT_EQ(gen.field_offset(f), total);
        total += gen.field_size(f);
        EXPECT_GE(gen.field_size(f), 1u);
    }
    EXPECT_EQ(total, gen.key_space());
    EXPECT_LE(gen.key_space(), spec.n_ids);
}

TEST(RecDatasetTest, SamplesStayInFieldRanges)
{
    const DatasetSpec spec = DatasetByName("Criteo").Scaled(10000.0);
    RecDatasetGenerator gen(spec, 2);
    for (int i = 0; i < 1000; ++i) {
        const RecSample sample = gen.Next();
        ASSERT_EQ(sample.keys.size(), gen.n_features());
        for (std::uint32_t f = 0; f < gen.n_features(); ++f) {
            ASSERT_GE(sample.keys[f], gen.field_offset(f));
            ASSERT_LT(sample.keys[f],
                      gen.field_offset(f) + gen.field_size(f));
        }
        ASSERT_TRUE(sample.label == 0.0f || sample.label == 1.0f);
    }
}

TEST(RecDatasetTest, LabelsAreLearnable)
{
    // Ground-truth labels correlate with the hidden weights, so both
    // classes must appear and the rate must not be degenerate.
    const DatasetSpec spec = DatasetByName("Avazu").Scaled(10000.0);
    RecDatasetGenerator gen(spec, 3);
    int positives = 0;
    constexpr int kSamples = 5000;
    for (int i = 0; i < kSamples; ++i)
        positives += gen.Next().label > 0.5f;
    EXPECT_GT(positives, kSamples / 10);
    EXPECT_LT(positives, 9 * kSamples / 10);
}

TEST(RecDatasetTest, DeterministicForSeed)
{
    const DatasetSpec spec = DatasetByName("Avazu").Scaled(10000.0);
    RecDatasetGenerator a(spec, 7), b(spec, 7);
    for (int i = 0; i < 100; ++i) {
        const RecSample sa = a.Next(), sb = b.Next();
        ASSERT_EQ(sa.keys, sb.keys);
        ASSERT_EQ(sa.label, sb.label);
    }
}

TEST(KgDatasetTest, TriplesInRange)
{
    const DatasetSpec spec = DatasetByName("FB15k").Scaled(10.0);
    KgDatasetGenerator gen(spec, 8, 1);
    for (int i = 0; i < 1000; ++i) {
        const KgSample sample = gen.Next();
        ASSERT_LT(sample.positive.head, gen.n_entities());
        ASSERT_LT(sample.positive.tail, gen.n_entities());
        ASSERT_NE(sample.positive.head, sample.positive.tail);
        ASSERT_LT(sample.positive.relation, gen.n_relations());
        ASSERT_EQ(sample.negatives.size(), 8u);
        for (auto e : sample.negatives)
            ASSERT_LT(e, gen.n_entities());
    }
}

TEST(KgDatasetTest, KeyLayoutSeparatesEntitiesAndRelations)
{
    const DatasetSpec spec = DatasetByName("FB15k").Scaled(10.0);
    KgDatasetGenerator gen(spec, 4, 1);
    EXPECT_EQ(gen.EntityKey(5), 5u);
    EXPECT_EQ(gen.RelationKey(0), gen.n_entities());
    EXPECT_EQ(gen.key_space(), gen.n_entities() + gen.n_relations());
}

TEST(KgDatasetTest, KeysOfCoversSample)
{
    const DatasetSpec spec = DatasetByName("FB15k").Scaled(10.0);
    KgDatasetGenerator gen(spec, 16, 5);
    const KgSample sample = gen.Next();
    const auto keys = gen.KeysOf(sample);
    std::unordered_set<Key> key_set(keys.begin(), keys.end());
    EXPECT_TRUE(key_set.count(gen.EntityKey(sample.positive.head)));
    EXPECT_TRUE(key_set.count(gen.EntityKey(sample.positive.tail)));
    EXPECT_TRUE(
        key_set.count(gen.RelationKey(sample.positive.relation)));
    for (auto e : sample.negatives)
        EXPECT_TRUE(key_set.count(gen.EntityKey(e)));
    // Deduplicated.
    EXPECT_EQ(key_set.size(), keys.size());
}

TEST(TraceTest, SyntheticShape)
{
    UniformDistribution dist(1000);
    Rng rng(1);
    const Trace trace = Trace::Synthetic(dist, rng, 10, 4, 32);
    EXPECT_EQ(trace.NumSteps(), 10u);
    EXPECT_EQ(trace.n_gpus(), 4u);
    for (std::size_t s = 0; s < 10; ++s) {
        for (GpuId g = 0; g < 4; ++g) {
            const auto &keys = trace.KeysFor(s, g);
            EXPECT_LE(keys.size(), 32u);
            EXPECT_GT(keys.size(), 0u);
            std::unordered_set<Key> set(keys.begin(), keys.end());
            EXPECT_EQ(set.size(), keys.size()) << "dupes in sub-batch";
        }
    }
}

TEST(TraceTest, StatsConsistent)
{
    UniformDistribution dist(100);
    Rng rng(2);
    const Trace trace = Trace::Synthetic(dist, rng, 20, 2, 16);
    const TraceStats stats = trace.Stats();
    EXPECT_EQ(stats.steps, 20u);
    EXPECT_EQ(stats.n_gpus, 2u);
    EXPECT_LE(stats.distinct_keys, 100u);
    EXPECT_GT(stats.total_key_accesses, 0u);
    EXPECT_NEAR(stats.mean_keys_per_step,
                static_cast<double>(stats.total_key_accesses) / 20.0,
                1e-9);
}

TEST(TraceTest, FromRecKeysMatchGeneratorRanges)
{
    const DatasetSpec spec = DatasetByName("Avazu").Scaled(50000.0);
    RecDatasetGenerator gen(spec, 3);
    const Trace trace = Trace::FromRec(gen, 5, 2, 8);
    EXPECT_EQ(trace.key_space(), gen.key_space());
    for (std::size_t s = 0; s < 5; ++s) {
        for (GpuId g = 0; g < 2; ++g) {
            for (Key k : trace.KeysFor(s, g))
                ASSERT_LT(k, gen.key_space());
        }
    }
}

TEST(TraceTest, FromKgCoversRelationsToo)
{
    const DatasetSpec spec = DatasetByName("FB15k").Scaled(10.0);
    KgDatasetGenerator gen(spec, 8, 4);
    const Trace trace = Trace::FromKg(gen, 5, 2, 4);
    bool saw_relation_key = false;
    for (std::size_t s = 0; s < 5; ++s) {
        for (GpuId g = 0; g < 2; ++g) {
            for (Key k : trace.KeysFor(s, g)) {
                ASSERT_LT(k, gen.key_space());
                saw_relation_key |= k >= gen.n_entities();
            }
        }
    }
    EXPECT_TRUE(saw_relation_key);
}

TEST(DedupeKeysTest, PreservesFirstSeenOrder)
{
    std::vector<Key> keys = {5, 3, 5, 1, 3, 9, 1};
    DedupeKeys(keys);
    EXPECT_EQ(keys, (std::vector<Key>{5, 3, 1, 9}));
}

}  // namespace
}  // namespace frugal
