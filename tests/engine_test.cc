/**
 * End-to-end engine tests: every engine must train to exactly the same
 * parameters as the single-threaded oracle, under a sweep of GPU counts,
 * distributions, cache sizes, and flush-thread counts — the strongest
 * form of the paper's synchronous-consistency claim (§3.3).
 */
#include <gtest/gtest.h>

#include <string>

#include "common/distribution.h"
#include "runtime/baseline_engines.h"
#include "runtime/frugal_engine.h"
#include "runtime/microtask.h"
#include "runtime/oracle.h"

namespace frugal {
namespace {

struct EngineCase
{
    std::string engine;
    std::uint32_t n_gpus;
    std::size_t flush_threads;
    double cache_ratio;
    double zipf_theta;  // 0 = uniform
    std::size_t lookahead;
    std::string optimizer;
};

class EngineOracleTest : public ::testing::TestWithParam<EngineCase>
{
};

EngineConfig
ConfigFor(const EngineCase &c)
{
    EngineConfig config;
    config.n_gpus = c.n_gpus;
    config.dim = 8;
    config.key_space = 512;
    config.cache_ratio = c.cache_ratio;
    config.lookahead = c.lookahead;
    config.flush_threads = c.flush_threads;
    config.optimizer = c.optimizer;
    config.learning_rate = 0.05f;
    config.audit_consistency = true;
    return config;
}

Trace
TraceFor(const EngineCase &c, std::uint64_t key_space, std::size_t steps,
         std::size_t keys_per_gpu)
{
    Rng rng(777);
    auto dist = c.zipf_theta > 0
                    ? MakeDistribution(DistributionKind::kZipf, key_space,
                                       c.zipf_theta)
                    : MakeDistribution(DistributionKind::kUniform,
                                       key_space);
    return Trace::Synthetic(*dist, rng, steps, c.n_gpus, keys_per_gpu);
}

TEST_P(EngineOracleTest, FinalTableMatchesOracleBitForBit)
{
    const EngineCase c = GetParam();
    const EngineConfig config = ConfigFor(c);
    const Trace trace = TraceFor(c, config.key_space, /*steps=*/60,
                                 /*keys_per_gpu=*/24);
    const GradFn task = MakeLinearGradTask(0.2f, 0.01f);

    auto engine = MakeEngine(c.engine, config);
    const RunReport report = engine->Run(trace, task);
    EXPECT_EQ(report.audit_violations, 0u);
    EXPECT_EQ(report.steps, 60u);
    EXPECT_GT(report.updates_applied, 0u);

    // Oracle replay on a fresh table.
    EmbeddingTableConfig table_config;
    table_config.key_space = config.key_space;
    table_config.dim = config.dim;
    table_config.init_seed = config.init_seed;
    table_config.init_scale = config.init_scale;
    HostEmbeddingTable oracle_table(table_config);
    auto oracle_opt =
        MakeOptimizer(config.optimizer, config.learning_rate,
                      config.key_space, config.dim);
    const std::uint64_t oracle_applied =
        RunOracle(oracle_table, *oracle_opt, trace, task);

    EXPECT_EQ(report.updates_applied, oracle_applied);
    EXPECT_TRUE(TablesBitEqual(engine->table(), oracle_table))
        << "max diff = "
        << MaxAbsTableDiff(engine->table(), oracle_table);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineOracleTest,
    ::testing::Values(
        // Frugal across GPU counts, skews, cache sizes, flush threads.
        EngineCase{"frugal", 1, 1, 0.05, 0.0, 10, "sgd"},
        EngineCase{"frugal", 2, 2, 0.05, 0.0, 10, "sgd"},
        EngineCase{"frugal", 2, 4, 0.01, 0.9, 10, "sgd"},
        EngineCase{"frugal", 4, 2, 0.05, 0.99, 10, "sgd"},
        EngineCase{"frugal", 4, 8, 0.10, 0.9, 10, "sgd"},
        EngineCase{"frugal", 3, 3, 0.05, 0.9, 10, "adagrad"},
        // Stress the gate: lookahead 1 and single flusher.
        EngineCase{"frugal", 2, 1, 0.02, 0.99, 1, "sgd"},
        // Oversized lookahead (beyond trace length).
        EngineCase{"frugal", 2, 2, 0.05, 0.9, 1000, "sgd"},
        // Wider Frugal sweep: many GPUs, extreme skew, stateful
        // optimizer, tiny cache.
        EngineCase{"frugal", 6, 6, 0.02, 0.99, 5, "sgd"},
        EngineCase{"frugal", 8, 4, 0.05, 0.9, 10, "sgd"},
        EngineCase{"frugal", 2, 2, 0.20, 0.0, 10, "adagrad"},
        EngineCase{"frugal", 5, 1, 0.01, 0.9, 3, "adagrad"},
        // Baselines.
        EngineCase{"frugal-sync", 2, 0, 0.05, 0.9, 10, "sgd"},
        EngineCase{"frugal-sync", 4, 0, 0.05, 0.0, 10, "adagrad"},
        EngineCase{"cached", 2, 0, 0.05, 0.9, 10, "sgd"},
        EngineCase{"cached", 4, 0, 0.01, 0.99, 10, "sgd"},
        EngineCase{"nocache", 2, 0, 0.05, 0.9, 10, "sgd"},
        EngineCase{"nocache", 3, 0, 0.05, 0.0, 10, "adagrad"}),
    [](const ::testing::TestParamInfo<EngineCase> &info) {
        const EngineCase &c = info.param;
        std::string name = c.engine + "_g" + std::to_string(c.n_gpus) +
                           "_f" + std::to_string(c.flush_threads) + "_cr" +
                           std::to_string(static_cast<int>(
                               c.cache_ratio * 100)) +
                           "_z" +
                           std::to_string(static_cast<int>(
                               c.zipf_theta * 100)) +
                           "_L" + std::to_string(c.lookahead) + "_" +
                           c.optimizer;
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

TEST(EngineTest, AllEnginesAgreeWithEachOther)
{
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 4;
    config.key_space = 256;
    config.cache_ratio = 0.05;
    config.flush_threads = 2;
    config.audit_consistency = true;

    Rng rng(42);
    ZipfDistribution dist(config.key_space, 0.9);
    const Trace trace = Trace::Synthetic(dist, rng, 40, 2, 16);
    const GradFn task = MakeLinearGradTask();

    auto reference = MakeEngine("nocache", config);
    reference->Run(trace, task);
    for (const char *name : {"frugal", "frugal-sync", "cached"}) {
        auto engine = MakeEngine(name, config);
        engine->Run(trace, task);
        EXPECT_TRUE(TablesBitEqual(engine->table(), reference->table()))
            << name << " diverged, max diff = "
            << MaxAbsTableDiff(engine->table(), reference->table());
    }
}

TEST(EngineTest, StepHookRunsOncePerStep)
{
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 4;
    config.key_space = 64;
    config.flush_threads = 2;

    Rng rng(1);
    UniformDistribution dist(64);
    const Trace trace = Trace::Synthetic(dist, rng, 25, 2, 8);

    for (const char *name : {"frugal", "frugal-sync", "cached",
                             "nocache"}) {
        std::vector<Step> hooks;
        auto engine = MakeEngine(name, config);
        engine->Run(trace, MakeConstantGradTask(),
                    [&](Step s) { hooks.push_back(s); });
        ASSERT_EQ(hooks.size(), 25u) << name;
        for (Step s = 0; s < 25; ++s)
            ASSERT_EQ(hooks[s], s) << name;
    }
}

TEST(EngineTest, ResetParametersRestoresInit)
{
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 4;
    config.key_space = 64;
    config.flush_threads = 2;

    Rng rng(1);
    UniformDistribution dist(64);
    const Trace trace = Trace::Synthetic(dist, rng, 10, 2, 8);

    auto engine = MakeEngine("frugal", config);
    engine->Run(trace, MakeConstantGradTask());
    engine->ResetParameters();

    EmbeddingTableConfig table_config;
    table_config.key_space = config.key_space;
    table_config.dim = config.dim;
    table_config.init_seed = config.init_seed;
    table_config.init_scale = config.init_scale;
    HostEmbeddingTable fresh(table_config);
    EXPECT_TRUE(TablesBitEqual(engine->table(), fresh));
}

TEST(EngineTest, RerunAfterResetIsReproducible)
{
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 4;
    config.key_space = 128;
    config.flush_threads = 3;
    config.optimizer = "adagrad";

    Rng rng(5);
    ZipfDistribution dist(128, 0.9);
    const Trace trace = Trace::Synthetic(dist, rng, 30, 2, 8);
    const GradFn task = MakeLinearGradTask();

    auto engine = MakeEngine("frugal", config);
    engine->Run(trace, task);
    EmbeddingTableConfig tc;
    tc.key_space = config.key_space;
    tc.dim = config.dim;
    HostEmbeddingTable snapshot(tc);
    for (Key k = 0; k < 128; ++k) {
        for (std::size_t j = 0; j < 4; ++j)
            snapshot.MutableRow(k)[j] = engine->table().Row(k)[j];
    }

    engine->ResetParameters();
    engine->Run(trace, task);
    EXPECT_TRUE(TablesBitEqual(engine->table(), snapshot));
}

TEST(EngineTest, LegacyFlushShapeMatchesCoalescedBitForBit)
{
    // The pre-overhaul control plane (unsharded PQ, per-ticket flush
    // application) stays selectable as the benchmark control; both
    // shapes must train to exactly the same parameters.
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 8;
    config.key_space = 256;
    config.flush_threads = 4;
    config.audit_consistency = true;

    Rng rng(91);
    ZipfDistribution dist(config.key_space, 0.9);
    const Trace trace = Trace::Synthetic(dist, rng, 50, 2, 16);
    const GradFn task = MakeLinearGradTask();

    EngineConfig legacy = config;
    legacy.pq_shards = 1;
    legacy.coalesced_flush = false;

    auto coalesced_engine = MakeEngine("frugal", config);
    auto legacy_engine = MakeEngine("frugal", legacy);
    const RunReport coalesced_report = coalesced_engine->Run(trace, task);
    const RunReport legacy_report = legacy_engine->Run(trace, task);

    EXPECT_EQ(coalesced_report.audit_violations, 0u);
    EXPECT_EQ(legacy_report.audit_violations, 0u);
    EXPECT_EQ(coalesced_report.updates_applied,
              legacy_report.updates_applied);
    // Flush-lag instrumentation rides the coalesced path only.
    EXPECT_GT(coalesced_report.flush_lag.count(), 0u);
    EXPECT_EQ(legacy_report.flush_lag.count(), 0u);
    EXPECT_TRUE(
        TablesBitEqual(coalesced_engine->table(), legacy_engine->table()));

    EmbeddingTableConfig tc;
    tc.key_space = config.key_space;
    tc.dim = config.dim;
    tc.init_seed = config.init_seed;
    tc.init_scale = config.init_scale;
    HostEmbeddingTable oracle_table(tc);
    auto opt = MakeOptimizer(config.optimizer, config.learning_rate,
                             config.key_space, config.dim);
    RunOracle(oracle_table, *opt, trace, task);
    EXPECT_TRUE(TablesBitEqual(coalesced_engine->table(), oracle_table));
}

TEST(EngineTest, SingleKeyAdversarialBatch)
{
    // Every GPU hammers the same key every step: maximal write conflicts
    // and a W set that is always about to be read again.
    EngineConfig config;
    config.n_gpus = 4;
    config.dim = 4;
    config.key_space = 8;
    config.flush_threads = 2;
    config.lookahead = 3;
    config.audit_consistency = true;

    std::vector<StepKeys> steps(30);
    for (auto &s : steps)
        s.per_gpu.assign(4, std::vector<Key>{5});
    const Trace trace(std::move(steps), 8, 4);
    const GradFn task = MakeLinearGradTask();

    auto engine = MakeEngine("frugal", config);
    const RunReport report = engine->Run(trace, task);
    EXPECT_EQ(report.audit_violations, 0u);

    EmbeddingTableConfig tc;
    tc.key_space = 8;
    tc.dim = 4;
    tc.init_seed = config.init_seed;
    tc.init_scale = config.init_scale;
    HostEmbeddingTable oracle_table(tc);
    auto opt = MakeOptimizer("sgd", config.learning_rate, 8, 4);
    RunOracle(oracle_table, *opt, trace, task);
    EXPECT_TRUE(TablesBitEqual(engine->table(), oracle_table));
}

TEST(EngineTest, TreeHeapQueueVariantIsAlsoConsistent)
{
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 4;
    config.key_space = 128;
    config.flush_threads = 4;
    config.use_tree_heap = true;
    config.audit_consistency = true;

    Rng rng(9);
    ZipfDistribution dist(128, 0.9);
    const Trace trace = Trace::Synthetic(dist, rng, 40, 2, 16);
    const GradFn task = MakeLinearGradTask();

    FrugalEngine engine(config);
    EXPECT_EQ(engine.Name(), "frugal-treeheap");
    const RunReport report = engine.Run(trace, task);
    EXPECT_EQ(report.audit_violations, 0u);

    EmbeddingTableConfig tc;
    tc.key_space = 128;
    tc.dim = 4;
    tc.init_seed = config.init_seed;
    tc.init_scale = config.init_scale;
    HostEmbeddingTable oracle_table(tc);
    auto opt = MakeOptimizer("sgd", config.learning_rate, 128, 4);
    RunOracle(oracle_table, *opt, trace, task);
    EXPECT_TRUE(TablesBitEqual(engine.table(), oracle_table));
}

TEST(EngineTest, CacheStatsPlausible)
{
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 4;
    config.key_space = 1024;
    config.cache_ratio = 0.10;
    config.flush_threads = 2;

    Rng rng(3);
    ZipfDistribution dist(1024, 0.99);
    const Trace trace = Trace::Synthetic(dist, rng, 50, 2, 64);

    auto engine = MakeEngine("frugal", config);
    const RunReport report = engine->Run(trace, MakeConstantGradTask());
    // Skewed access + cache ⇒ hits happen; misses bounded by accesses.
    EXPECT_GT(report.cache.hits, 0u);
    EXPECT_GT(report.host_reads, 0u);
    EXPECT_EQ(report.updates_applied, report.updates_emitted);
}

TEST(EngineTest, OracularAndPlainModesTrainBitIdentically)
{
    // Oracular warming/eviction only *moves* reads; both modes must
    // train to exactly the oracle's parameters, and the prefetch
    // counters must reflect which mode ran.
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 8;
    config.key_space = 512;
    config.cache_ratio = 0.05;
    config.flush_threads = 2;
    config.audit_consistency = true;

    Rng rng(55);
    ZipfDistribution dist(config.key_space, 0.9);
    const Trace trace = Trace::Synthetic(dist, rng, 60, 2, 24);
    const GradFn task = MakeLinearGradTask();

    EngineConfig plain = config;
    plain.oracular_prefetch = false;

    auto oracular_engine = MakeEngine("frugal", config);
    auto plain_engine = MakeEngine("frugal", plain);
    const RunReport oracular_report = oracular_engine->Run(trace, task);
    const RunReport plain_report = plain_engine->Run(trace, task);

    EXPECT_EQ(oracular_report.audit_violations, 0u);
    EXPECT_EQ(plain_report.audit_violations, 0u);
    EXPECT_TRUE(TablesBitEqual(oracular_engine->table(),
                               plain_engine->table()));

    EmbeddingTableConfig tc;
    tc.key_space = config.key_space;
    tc.dim = config.dim;
    tc.init_seed = config.init_seed;
    tc.init_scale = config.init_scale;
    HostEmbeddingTable oracle_table(tc);
    auto opt = MakeOptimizer(config.optimizer, config.learning_rate,
                             config.key_space, config.dim);
    RunOracle(oracle_table, *opt, trace, task);
    EXPECT_TRUE(TablesBitEqual(oracular_engine->table(), oracle_table));

    // The oracle mode actually warmed and reclaimed; plain mode's
    // counters stay zero.
    EXPECT_GT(oracular_report.prefetch.rows_warmed, 0u);
    EXPECT_GT(oracular_report.prefetch.dead_evictions, 0u);
    EXPECT_LE(oracular_report.prefetch.warm_hits,
              oracular_report.cache.hits);
    EXPECT_EQ(plain_report.prefetch.rows_warmed, 0u);
    EXPECT_EQ(plain_report.prefetch.warm_hits, 0u);
    EXPECT_EQ(plain_report.prefetch.dead_evictions, 0u);
    EXPECT_EQ(plain_report.prefetch.late_warms, 0u);
}

TEST(EngineTest, OracularThrashingCacheWithGatherLatencyIsConsistent)
{
    // Adversarial shape for the warm/evict machinery: a cache far
    // smaller than the working set (constant Belady eviction +
    // admission declines) plus the simulated PCIe gather latency
    // (exercises the amortized-sleep path on trainers AND prefetcher).
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 4;
    config.key_space = 512;
    config.cache_ratio = 0.01;  // ~2 rows per GPU
    config.flush_threads = 2;
    config.lookahead = 6;
    config.host_gather_ns = 500;
    config.audit_consistency = true;

    Rng rng(77);
    ZipfDistribution dist(config.key_space, 0.8);
    const Trace trace = Trace::Synthetic(dist, rng, 50, 2, 32);
    const GradFn task = MakeLinearGradTask();

    auto engine = MakeEngine("frugal", config);
    const RunReport report = engine->Run(trace, task);
    EXPECT_EQ(report.audit_violations, 0u);

    EmbeddingTableConfig tc;
    tc.key_space = config.key_space;
    tc.dim = config.dim;
    tc.init_seed = config.init_seed;
    tc.init_scale = config.init_scale;
    HostEmbeddingTable oracle_table(tc);
    auto opt = MakeOptimizer(config.optimizer, config.learning_rate,
                             config.key_space, config.dim);
    RunOracle(oracle_table, *opt, trace, task);
    EXPECT_TRUE(TablesBitEqual(engine->table(), oracle_table));
}

}  // namespace
}  // namespace frugal
