/**
 * Failure-injection and edge-case tests for the functional runtime:
 * starve the flush pipeline, choke the staging queue, shrink caches to
 * one row, feed degenerate traces — consistency must never break and the
 * result must still equal the oracle.
 */
#include <gtest/gtest.h>

#include "common/distribution.h"
#include "runtime/baseline_engines.h"
#include "runtime/frugal_engine.h"
#include "runtime/microtask.h"
#include "runtime/oracle.h"

namespace frugal {
namespace {

EngineConfig
BaseConfig()
{
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 4;
    config.key_space = 256;
    config.cache_ratio = 0.05;
    config.flush_threads = 2;
    config.audit_consistency = true;
    return config;
}

void
ExpectOracleEqual(Engine &engine, const Trace &trace, const GradFn &task)
{
    EmbeddingTableConfig tc;
    tc.key_space = engine.config().key_space;
    tc.dim = engine.config().dim;
    tc.init_seed = engine.config().init_seed;
    tc.init_scale = engine.config().init_scale;
    HostEmbeddingTable oracle_table(tc);
    auto opt = MakeOptimizer(engine.config().optimizer,
                             engine.config().learning_rate,
                             engine.config().key_space,
                             engine.config().dim);
    RunOracle(oracle_table, *opt, trace, task);
    EXPECT_TRUE(TablesBitEqual(engine.table(), oracle_table))
        << "max diff "
        << MaxAbsTableDiff(engine.table(), oracle_table);
}

TEST(FaultInjectionTest, StarvedFlushPipeline)
{
    // One flush thread, large flush demand: gates must block (not skip)
    // and the run must still be exact.
    EngineConfig config = BaseConfig();
    config.n_gpus = 4;
    config.flush_threads = 1;
    config.flush_batch = 1;  // worst-case dequeue amortisation
    Rng rng(1);
    ZipfDistribution dist(config.key_space, 0.99);
    const Trace trace = Trace::Synthetic(dist, rng, 50, 4, 32);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);
    EXPECT_EQ(report.audit_violations, 0u);
    EXPECT_GT(report.gate_waits, 0u);  // it really did block
    ExpectOracleEqual(engine, trace, task);
}

TEST(FaultInjectionTest, TinyStagingQueueBackpressure)
{
    EngineConfig config = BaseConfig();
    config.staging_capacity = 2;  // trainers constantly block on push
    Rng rng(2);
    UniformDistribution dist(config.key_space);
    const Trace trace = Trace::Synthetic(dist, rng, 40, 2, 24);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);
    EXPECT_EQ(report.audit_violations, 0u);
    ExpectOracleEqual(engine, trace, task);
}

TEST(FaultInjectionTest, OneRowCache)
{
    EngineConfig config = BaseConfig();
    config.cache_ratio = 1e-9;  // CacheRowsPerGpu clamps to 1
    ASSERT_EQ(config.CacheRowsPerGpu(), 1u);
    Rng rng(3);
    ZipfDistribution dist(config.key_space, 0.9);
    const Trace trace = Trace::Synthetic(dist, rng, 40, 2, 16);
    for (const char *name : {"frugal", "frugal-sync", "cached"}) {
        auto engine = MakeEngine(name, config);
        const GradFn task = MakeLinearGradTask();
        const RunReport report = engine->Run(trace, task);
        EXPECT_EQ(report.audit_violations, 0u) << name;
        ExpectOracleEqual(*engine, trace, task);
    }
}

TEST(FaultInjectionTest, EmptySubBatches)
{
    // Some GPUs read nothing in some steps.
    EngineConfig config = BaseConfig();
    std::vector<StepKeys> steps(20);
    Rng rng(4);
    for (std::size_t s = 0; s < steps.size(); ++s) {
        steps[s].per_gpu.resize(2);
        // GPU 0 idles on even steps, GPU 1 on odd steps.
        for (GpuId g = 0; g < 2; ++g) {
            if ((s + g) % 2 == 0)
                continue;
            for (int i = 0; i < 8; ++i)
                steps[s].per_gpu[g].push_back(rng.NextBounded(256));
            DedupeKeys(steps[s].per_gpu[g]);
        }
    }
    const Trace trace(std::move(steps), 256, 2);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);
    EXPECT_EQ(report.audit_violations, 0u);
    ExpectOracleEqual(engine, trace, task);
}

TEST(FaultInjectionTest, SingleStepTrace)
{
    EngineConfig config = BaseConfig();
    Rng rng(5);
    UniformDistribution dist(config.key_space);
    const Trace trace = Trace::Synthetic(dist, rng, 1, 2, 16);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);
    EXPECT_EQ(report.steps, 1u);
    EXPECT_EQ(report.audit_violations, 0u);
    ExpectOracleEqual(engine, trace, task);
}

TEST(FaultInjectionTest, EmptyTrace)
{
    EngineConfig config = BaseConfig();
    const Trace trace(std::vector<StepKeys>{}, config.key_space, 2);
    FrugalEngine engine(config);
    const RunReport report = engine.Run(trace, MakeConstantGradTask());
    EXPECT_EQ(report.steps, 0u);
    EXPECT_EQ(report.updates_applied, 0u);
}

TEST(FaultInjectionTest, EveryKeyEveryStep)
{
    // The full table is read and written each step: maximal flush load,
    // every entry permanently urgent.
    EngineConfig config = BaseConfig();
    config.key_space = 64;
    config.flush_threads = 3;
    std::vector<StepKeys> steps(25);
    for (auto &step : steps) {
        step.per_gpu.resize(2);
        for (GpuId g = 0; g < 2; ++g) {
            for (Key k = 0; k < 64; ++k)
                step.per_gpu[g].push_back(k);
        }
    }
    const Trace trace(std::move(steps), 64, 2);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);
    EXPECT_EQ(report.audit_violations, 0u);
    // 64 keys × 2 GPUs × 25 steps updates, all flushed.
    EXPECT_EQ(report.updates_applied, 64u * 2u * 25u);
    ExpectOracleEqual(engine, trace, task);
}

TEST(FaultInjectionTest, ManyFlushThreadsFewKeys)
{
    // More flushers than work: they must spin down cleanly.
    EngineConfig config = BaseConfig();
    config.flush_threads = 16;
    config.key_space = 8;
    Rng rng(6);
    UniformDistribution dist(8);
    const Trace trace = Trace::Synthetic(dist, rng, 30, 2, 4);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);
    EXPECT_EQ(report.audit_violations, 0u);
    ExpectOracleEqual(engine, trace, task);
}

TEST(FaultInjectionTest, ZeroGradientUpdatesStillFlush)
{
    // Zero gradients exercise the full pipeline (versions advance even
    // when values do not change).
    EngineConfig config = BaseConfig();
    Rng rng(7);
    UniformDistribution dist(config.key_space);
    const Trace trace = Trace::Synthetic(dist, rng, 20, 2, 8);
    FrugalEngine engine(config);
    const RunReport report =
        engine.Run(trace, MakeConstantGradTask(0.0f));
    EXPECT_EQ(report.audit_violations, 0u);
    EXPECT_EQ(report.updates_applied, report.updates_emitted);
    // Table must equal a fresh init (SGD with zero gradients).
    EmbeddingTableConfig tc;
    tc.key_space = config.key_space;
    tc.dim = config.dim;
    tc.init_seed = config.init_seed;
    tc.init_scale = config.init_scale;
    HostEmbeddingTable fresh(tc);
    EXPECT_TRUE(TablesBitEqual(engine.table(), fresh));
}

}  // namespace
}  // namespace frugal
