/**
 * Fault-tolerance tests: scripted fault plans kill flush threads
 * mid-claim, fail host writes transiently, stall the drainer, and kill
 * trainers at step boundaries — the watchdog must detect and recover,
 * and the final table must stay bit-equal to the fault-free oracle.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include <algorithm>

#include "common/distribution.h"
#include "common/fault_injector.h"
#include "pq/g_entry_registry.h"
#include "runtime/frugal_engine.h"
#include "runtime/microtask.h"
#include "runtime/oracle.h"
#include "runtime/watchdog.h"

namespace frugal {
namespace {

EngineConfig
BaseConfig()
{
    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 4;
    config.key_space = 256;
    config.cache_ratio = 0.05;
    config.flush_threads = 2;
    config.audit_consistency = true;
    config.watchdog_poll_ms = 1;  // recover fast at test scale
    return config;
}

void
ExpectOracleEqual(Engine &engine, const Trace &trace, const GradFn &task)
{
    EmbeddingTableConfig tc;
    tc.key_space = engine.config().key_space;
    tc.dim = engine.config().dim;
    tc.init_seed = engine.config().init_seed;
    tc.init_scale = engine.config().init_scale;
    HostEmbeddingTable oracle_table(tc);
    auto opt = MakeOptimizer(engine.config().optimizer,
                             engine.config().learning_rate,
                             engine.config().key_space,
                             engine.config().dim);
    RunOracle(oracle_table, *opt, trace, task);
    EXPECT_TRUE(TablesBitEqual(engine.table(), oracle_table))
        << "max diff " << MaxAbsTableDiff(engine.table(), oracle_table);
}

// --- fault injector determinism -------------------------------------

TEST(FaultInjectorTest, SameSeedSameFiresAcrossInterleavings)
{
    // The Bernoulli draw hashes (seed, site, hit index), so the set of
    // firing hit indices — and hence the fire count — must not depend on
    // which thread happens to dispense which index.
    FaultPlan plan;
    plan.seed = 77;
    FaultRule rule;
    rule.site = FaultSite::kHostWriteTransient;
    rule.probability = 0.3;
    plan.rules.push_back(rule);

    auto run_once = [&plan] {
        FaultInjector injector(plan);
        std::vector<std::thread> threads;
        for (int t = 0; t < 4; ++t) {
            threads.emplace_back([&injector] {
                for (int i = 0; i < 500; ++i)
                    (void)injector.Fire(FaultSite::kHostWriteTransient);
            });
        }
        for (auto &thread : threads)
            thread.join();
        EXPECT_EQ(injector.hits(FaultSite::kHostWriteTransient), 2000u);
        return injector.fires(FaultSite::kHostWriteTransient);
    };
    const std::uint64_t first = run_once();
    EXPECT_GT(first, 0u);
    EXPECT_LT(first, 2000u);
    EXPECT_EQ(run_once(), first);
    EXPECT_EQ(run_once(), first);
}

TEST(FaultInjectorTest, WindowAndContextGateRules)
{
    FaultPlan plan;
    FaultRule rule;
    rule.site = FaultSite::kTrainerDeath;
    rule.from_hit = 2;
    rule.until_hit = 4;
    rule.context = 9;
    rule.payload = 5;
    plan.rules.push_back(rule);
    FaultInjector injector(plan);
    EXPECT_FALSE(injector.Fire(FaultSite::kTrainerDeath, 9));  // hit 0
    EXPECT_FALSE(injector.Fire(FaultSite::kTrainerDeath, 9));  // hit 1
    EXPECT_FALSE(injector.Fire(FaultSite::kTrainerDeath, 8));  // hit 2, ctx
    const auto fired = injector.Fire(FaultSite::kTrainerDeath, 9);  // hit 3
    ASSERT_TRUE(fired.has_value());
    EXPECT_EQ(*fired, 5u);
    EXPECT_FALSE(injector.Fire(FaultSite::kTrainerDeath, 9));  // hit 4
}

// --- watchdog unit tests (scripted snapshots) -----------------------

TEST(WatchdogTest, ClassifyTaxonomy)
{
    ProgressSnapshot snap;
    snap.run_complete = true;
    EXPECT_EQ(Watchdog::Classify(snap), StallKind::kNone);

    snap = {};
    snap.dead_flushers = 1;
    EXPECT_EQ(Watchdog::Classify(snap), StallKind::kDeadFlusher);

    snap = {};
    snap.current_step = 5;
    snap.drained_steps = 3;
    snap.updates_emitted = 100;
    snap.updates_applied = 60;
    snap.staging_size = 40;
    EXPECT_EQ(Watchdog::Classify(snap), StallKind::kDrainStall);

    snap = {};
    snap.updates_emitted = 100;
    snap.updates_applied = 90;
    snap.staging_size = 0;
    snap.pq_size = 0;
    EXPECT_EQ(Watchdog::Classify(snap), StallKind::kClaimLeak);

    snap = {};
    snap.updates_emitted = 100;
    snap.updates_applied = 100;
    EXPECT_EQ(Watchdog::Classify(snap), StallKind::kEmptyQueueIdle);

    // Counters sampled without mutual ordering may read applied ahead
    // of emitted; that must classify as idle, not wrap around.
    snap = {};
    snap.updates_emitted = 100;
    snap.updates_applied = 101;
    EXPECT_EQ(Watchdog::Classify(snap), StallKind::kEmptyQueueIdle);
}

TEST(WatchdogTest, DeadFlusherRecoveredBeforeDeadline)
{
    // A dead flusher is definitive: recovery must run on the next poll,
    // long before the (here: enormous) stall deadline.
    std::atomic<bool> dead{true};
    std::atomic<int> recover_calls{0};
    Watchdog::Config config;
    config.poll = std::chrono::milliseconds(1);
    config.stall_deadline = std::chrono::milliseconds(60000);
    Watchdog watchdog(
        config,
        [&] {
            ProgressSnapshot snap;
            snap.dead_flushers = dead.load() ? 1 : 0;
            return snap;
        },
        [&](StallKind kind) {
            EXPECT_EQ(kind, StallKind::kDeadFlusher);
            recover_calls.fetch_add(1);
            dead.store(false);
            return true;
        },
        {});
    watchdog.Start();
    for (int i = 0; i < 500 && recover_calls.load() == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    watchdog.Stop();
    EXPECT_EQ(recover_calls.load(), 1);
    EXPECT_GE(watchdog.recoveries(), 1u);
    EXPECT_GE(watchdog.stalls_detected(), 1u);
}

TEST(WatchdogTest, TimedStallReportedButNotAutoRecovered)
{
    // No dead flag, just a frozen pipeline: the watchdog must classify
    // and diagnose, and count a stall — but a recover callback that
    // declines (returns false) means no recovery is recorded.
    std::atomic<int> diagnose_calls{0};
    Watchdog::Config config;
    config.poll = std::chrono::milliseconds(2);
    config.stall_deadline = std::chrono::milliseconds(10);
    Watchdog watchdog(
        config,
        [] {
            ProgressSnapshot snap;  // frozen forever
            snap.current_step = 7;
            snap.drained_steps = 5;
            snap.updates_emitted = 10;
            snap.staging_size = 10;
            return snap;
        },
        [](StallKind kind) {
            EXPECT_EQ(kind, StallKind::kDrainStall);
            return false;
        },
        [&] {
            diagnose_calls.fetch_add(1);
            return std::string("scripted diagnosis");
        });
    watchdog.Start();
    for (int i = 0; i < 500 && watchdog.stalls_detected() == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    watchdog.Stop();
    EXPECT_EQ(watchdog.stalls_detected(), 1u);  // reported once, not spammed
    EXPECT_EQ(watchdog.recoveries(), 0u);
    EXPECT_EQ(diagnose_calls.load(), 1);
    EXPECT_GT(watchdog.polls(), 0u);
}

TEST(WatchdogTest, ProgressSuppressesStallReports)
{
    std::atomic<std::uint64_t> counter{0};
    Watchdog::Config config;
    config.poll = std::chrono::milliseconds(1);
    config.stall_deadline = std::chrono::milliseconds(5);
    Watchdog watchdog(
        config,
        [&] {
            ProgressSnapshot snap;
            snap.updates_applied = counter.fetch_add(1);  // always advancing
            snap.updates_emitted = snap.updates_applied + 1;
            snap.pq_size = 1;
            return snap;
        },
        [](StallKind) {
            ADD_FAILURE() << "recover must not run while progressing";
            return false;
        },
        {});
    watchdog.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    watchdog.Stop();
    EXPECT_EQ(watchdog.stalls_detected(), 0u);
}

// --- engine-level fault drills --------------------------------------

TEST(FaultToleranceTest, TransientWriteFailuresRetriedExactly)
{
    // The first three host-write attempts fail; each costs one retry and
    // the result must be unaffected.
    FaultPlan plan;
    FaultRule rule;
    rule.site = FaultSite::kHostWriteTransient;
    rule.until_hit = 3;
    plan.rules.push_back(rule);
    FaultInjector injector(plan);

    EngineConfig config = BaseConfig();
    config.fault_injector = &injector;
    Rng rng(21);
    ZipfDistribution dist(config.key_space, 0.9);
    const Trace trace = Trace::Synthetic(dist, rng, 40, 2, 16);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);

    EXPECT_EQ(report.recovery.write_retries, 3u);
    EXPECT_EQ(report.recovery.faults_injected, 3u);
    EXPECT_EQ(report.audit_violations, 0u);
    ExpectOracleEqual(engine, trace, task);
}

TEST(FaultToleranceTest, RegistryAllocFailureIsStrongAndRetryable)
{
    // A firing growth fault throws std::bad_alloc out of GetOrCreate
    // with the shard untouched (strong guarantee); a plain retry of the
    // same key must succeed. Covers both growth sites: the shard's
    // FlatMap index fires first, the entry arena on the next window.
    FaultPlan plan;
    FaultRule rule;
    rule.site = FaultSite::kAllocFailure;
    rule.until_hit = 1;
    plan.rules.push_back(rule);
    FaultInjector injector(plan);
    GEntryRegistry registry(4);
    registry.ArmFaultInjector(&injector);
    EXPECT_THROW((void)registry.GetOrCreate(42), std::bad_alloc);
    EXPECT_EQ(registry.size(), 0u);
    EXPECT_EQ(registry.Find(42), nullptr);
    GEntry &entry = registry.GetOrCreate(42);  // retry succeeds
    EXPECT_EQ(entry.key(), 42u);
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_EQ(injector.fires(FaultSite::kAllocFailure), 1u);
    registry.ArmFaultInjector(nullptr);  // disarm
    (void)registry.GetOrCreate(43);
    EXPECT_EQ(registry.size(), 2u);
}

TEST(FaultToleranceTest, RegistryBatchAllocFailureLeavesShardRetryable)
{
    // Batched get-or-create hits the same fault points; the throw may
    // leave a *prefix* of the batch created (each key is atomic, the
    // batch is not), and rerunning the identical batch must converge
    // with no duplicates or lost keys.
    FaultPlan plan;
    FaultRule rule;
    rule.site = FaultSite::kAllocFailure;
    rule.from_hit = 1;
    rule.until_hit = 2;
    plan.rules.push_back(rule);
    FaultInjector injector(plan);
    GEntryRegistry registry(2);
    registry.ArmFaultInjector(&injector);
    const std::vector<Key> keys{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<GEntry *> out(keys.size(), nullptr);
    try {
        registry.GetOrCreateBatch(keys, out.data());
    } catch (const std::bad_alloc &) {
    }
    std::fill(out.begin(), out.end(), nullptr);
    registry.GetOrCreateBatch(keys, out.data());  // retry converges
    EXPECT_EQ(registry.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        ASSERT_NE(out[i], nullptr);
        EXPECT_EQ(out[i]->key(), keys[i]);
    }
}

TEST(FaultToleranceTest, FlushThreadDeathRecoveredBitEqual)
{
    // The acceptance drill: a seeded plan kills a flush thread mid-claim
    // (twice) while host writes also fail transiently. The watchdog must
    // reclaim the abandoned claims and respawn the thread, and the final
    // table must be bit-equal to the fault-free oracle.
    FaultPlan plan;
    plan.seed = 3;
    FaultRule death;
    death.site = FaultSite::kFlushThreadDeath;
    death.until_hit = 2;
    plan.rules.push_back(death);
    FaultRule flaky_writes;
    flaky_writes.site = FaultSite::kHostWriteTransient;
    flaky_writes.probability = 0.05;
    flaky_writes.until_hit = 2000;
    plan.rules.push_back(flaky_writes);
    FaultInjector injector(plan);

    EngineConfig config = BaseConfig();
    config.fault_injector = &injector;
    Rng rng(22);
    ZipfDistribution dist(config.key_space, 0.9);
    const Trace trace = Trace::Synthetic(dist, rng, 60, 2, 24);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);

    EXPECT_EQ(report.recovery.flusher_deaths, 2u);
    EXPECT_EQ(report.recovery.flusher_respawns, 2u);
    EXPECT_GE(report.recovery.watchdog_recoveries, 1u);
    EXPECT_GT(report.recovery.claims_reclaimed, 0u);
    EXPECT_EQ(report.updates_applied, report.updates_emitted);
    EXPECT_EQ(report.audit_violations, 0u);
    ExpectOracleEqual(engine, trace, task);
}

TEST(FaultToleranceTest, FlushThreadDeathWithSingleFlusher)
{
    // Worst case: the *only* flush thread dies. Nothing can make
    // progress until the watchdog revives it.
    FaultPlan plan;
    FaultRule death;
    death.site = FaultSite::kFlushThreadDeath;
    death.from_hit = 10;
    death.until_hit = 11;
    plan.rules.push_back(death);
    FaultInjector injector(plan);

    EngineConfig config = BaseConfig();
    config.flush_threads = 1;
    config.fault_injector = &injector;
    Rng rng(23);
    UniformDistribution dist(config.key_space);
    const Trace trace = Trace::Synthetic(dist, rng, 40, 2, 16);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);

    EXPECT_EQ(report.recovery.flusher_deaths, 1u);
    EXPECT_EQ(report.recovery.flusher_respawns, 1u);
    EXPECT_EQ(report.audit_violations, 0u);
    ExpectOracleEqual(engine, trace, task);
}

TEST(FaultToleranceTest, TrainerDeathDegradedModeBitEqual)
{
    // GPU 1 dies at the boundary of step 10; the survivor takes over its
    // trace share and ownership shards. Degraded mode must still be
    // bit-equal: the update stream (key, step, src) is unchanged, only
    // who produces it.
    FaultPlan plan;
    FaultRule death;
    death.site = FaultSite::kTrainerDeath;
    death.context = 10;  // fires in the completion of step 10
    death.payload = 1;   // victim GPU id
    plan.rules.push_back(death);
    FaultInjector injector(plan);

    EngineConfig config = BaseConfig();
    config.fault_injector = &injector;
    Rng rng(24);
    ZipfDistribution dist(config.key_space, 0.9);
    const Trace trace = Trace::Synthetic(dist, rng, 40, 2, 16);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);

    EXPECT_EQ(report.recovery.trainer_deaths, 1u);
    EXPECT_GT(report.recovery.ownership_remaps, 0u);
    EXPECT_EQ(report.audit_violations, 0u);
    ExpectOracleEqual(engine, trace, task);
}

TEST(FaultToleranceTest, TrainerDeathWithAdagradStateStaysExact)
{
    // Stateful optimizer + degraded mode: accumulator updates follow the
    // canonical (step, src) order, so the remap must not perturb them.
    FaultPlan plan;
    FaultRule death;
    death.site = FaultSite::kTrainerDeath;
    death.context = 5;
    death.payload = 0;  // kill GPU 0 for variety
    plan.rules.push_back(death);
    FaultInjector injector(plan);

    EngineConfig config = BaseConfig();
    config.optimizer = "adagrad";
    config.fault_injector = &injector;
    Rng rng(25);
    ZipfDistribution dist(config.key_space, 0.9);
    const Trace trace = Trace::Synthetic(dist, rng, 30, 2, 12);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);

    EXPECT_EQ(report.recovery.trainer_deaths, 1u);
    EXPECT_EQ(report.audit_violations, 0u);
    ExpectOracleEqual(engine, trace, task);
}

TEST(FaultToleranceTest, StagingDrainStallToleratedAndDiagnosable)
{
    // The drainer naps 50 ms at one step; consistency must hold (the
    // gate simply stays closed longer) and the injection is visible in
    // the fault counters.
    FaultPlan plan;
    FaultRule stall;
    stall.site = FaultSite::kStagingDrainStall;
    stall.context = 5;   // at step 5
    stall.payload = 50;  // milliseconds
    plan.rules.push_back(stall);
    FaultInjector injector(plan);

    EngineConfig config = BaseConfig();
    config.fault_injector = &injector;
    Rng rng(26);
    UniformDistribution dist(config.key_space);
    const Trace trace = Trace::Synthetic(dist, rng, 20, 2, 12);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);

    EXPECT_EQ(report.recovery.faults_injected, 1u);
    EXPECT_EQ(report.audit_violations, 0u);
    ExpectOracleEqual(engine, trace, task);
}

TEST(FaultToleranceTest, HealthyRunNoFalseRecoveries)
{
    // A fault-free run under an armed watchdog must never trigger
    // recovery actions or reclaim anything.
    EngineConfig config = BaseConfig();
    Rng rng(27);
    ZipfDistribution dist(config.key_space, 0.9);
    const Trace trace = Trace::Synthetic(dist, rng, 50, 2, 16);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);

    EXPECT_EQ(report.recovery.faults_injected, 0u);
    EXPECT_EQ(report.recovery.write_retries, 0u);
    EXPECT_EQ(report.recovery.flusher_deaths, 0u);
    EXPECT_EQ(report.recovery.flusher_respawns, 0u);
    EXPECT_EQ(report.recovery.claims_reclaimed, 0u);
    EXPECT_EQ(report.recovery.watchdog_recoveries, 0u);
    EXPECT_GT(report.recovery.watchdog_polls, 0u);  // it really sampled
    EXPECT_EQ(report.audit_violations, 0u);
    ExpectOracleEqual(engine, trace, task);
}

TEST(FaultToleranceTest, SparseShardsNoFalseStall)
{
    // Regression for the sharded dequeue path: with more PQ shards than
    // flush threads and a tiny key set, most sub-buckets are empty or
    // hold a single entry, so an individual DequeueClaim often comes
    // back empty (the work lives in a shard another rotation reaches).
    // The watchdog must not read that sparseness as a flush stall — the
    // in-bucket rotation guarantees any one dequeuer still sees every
    // shard, so flush progress continues and no stall is diagnosed.
    EngineConfig config = BaseConfig();
    config.pq_shards = 8;
    config.flush_threads = 2;
    config.key_space = 16;  // sparse: ~2 live keys per shard
    config.watchdog_stall_ms = 200;  // tight stall deadline
    Rng rng(31);
    ZipfDistribution dist(config.key_space, 0.9);
    const Trace trace = Trace::Synthetic(dist, rng, 120, 2, 8);
    FrugalEngine engine(config);
    const GradFn task = MakeLinearGradTask();
    const RunReport report = engine.Run(trace, task);

    EXPECT_EQ(report.steps, 120u);
    EXPECT_EQ(report.recovery.stalls_detected, 0u);
    EXPECT_EQ(report.recovery.watchdog_recoveries, 0u);
    EXPECT_EQ(report.recovery.claims_reclaimed, 0u);
    EXPECT_GT(report.recovery.watchdog_polls, 0u);
    EXPECT_EQ(report.audit_violations, 0u);
    ExpectOracleEqual(engine, trace, task);
}

TEST(FaultToleranceTest, KeyOwnershipRemapMovesEveryShard)
{
    KeyOwnership ownership(4);
    std::size_t owned_by_3 = 0;
    for (Key k = 0; k < 1000; ++k)
        owned_by_3 += ownership.OwnerOf(k) == 3 ? 1 : 0;
    EXPECT_GT(owned_by_3, 0u);
    const std::size_t moved = ownership.Remap(3, 1);
    EXPECT_GT(moved, 0u);
    for (Key k = 0; k < 1000; ++k)
        EXPECT_NE(ownership.OwnerOf(k), 3u);
    EXPECT_EQ(ownership.Remap(3, 1), 0u);  // idempotent: nothing left
}

}  // namespace
}  // namespace frugal
