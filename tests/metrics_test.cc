/** Tests for the reporting helpers. */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "metrics/reporter.h"

namespace frugal {
namespace {

TEST(FormatTest, Count)
{
    EXPECT_EQ(FormatCount(12), "12");
    EXPECT_EQ(FormatCount(1500), "1.5k");
    EXPECT_EQ(FormatCount(2'500'000), "2.50M");
    EXPECT_EQ(FormatCount(4.37e9), "4.37B");
}

TEST(FormatTest, Seconds)
{
    EXPECT_EQ(FormatSeconds(2.5), "2.50 s");
    EXPECT_EQ(FormatSeconds(12.3e-3), "12.30 ms");
    EXPECT_EQ(FormatSeconds(45e-6), "45.00 us");
    EXPECT_EQ(FormatSeconds(120e-9), "120 ns");
}

TEST(FormatTest, SpeedupAndBandwidth)
{
    EXPECT_EQ(FormatSpeedup(4.257), "4.26x");
    EXPECT_EQ(FormatBandwidthGbps(2.5e9), "2.50 GB/s");
    EXPECT_EQ(FormatDouble(3.14159, 3), "3.142");
}

TEST(TablePrinterTest, CsvRoundTrip)
{
    TablePrinter table("caption", {"a", "b"});
    table.AddRow({"1", "x"});
    table.AddRow({"2", "y"});
    const std::string path = "/tmp/frugal_metrics_test.csv";
    table.WriteCsv(path);
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), "a,b\n1,x\n2,y\n");
    std::remove(path.c_str());
}

TEST(TablePrinterTest, RejectsMismatchedRow)
{
    TablePrinter table("caption", {"a", "b"});
    EXPECT_DEATH(table.AddRow({"only-one"}), "row has");
}

}  // namespace
}  // namespace frugal
