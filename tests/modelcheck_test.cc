/**
 * @file
 * Systematic-interleaving scenarios for the flush path, run under the
 * deterministic explorer (src/check/scheduler.h). Each scenario is a
 * small fixed cast of threads driving the REAL production types
 * (AtomicSlotSet, TwoLevelPQ, GEntry, the pq_ops transitions); the
 * explorer enumerates a bounded-preemption DFS of their interleavings
 * and then diversifies with seeded PCT until ≥ 10k distinct schedules
 * were covered, asserting on every one:
 *
 *  - the P²F invariant: when the gate for step s reports clear, every
 *    update produced for a step < s (and registered before gating
 *    began) is already in host memory;
 *  - exactly-once claims: no g-entry is claimed by two flush threads
 *    for the same enqueue;
 *  - monotone priorities: a DequeueClaim batch is priority-sorted and
 *    DequeueClaimBelow never exceeds its ceiling;
 *  - slot-set accounting: per segment, popped ≤ published at every
 *    instant (the announce-before-publish protocol).
 *
 * The *_ReorderBugCaught test is the negative control: it runs the
 * exact announce/publish protocol of AtomicSlotSet::Insert with the
 * PR 1 bug shape deliberately re-introduced (pointer published before
 * the counter announcement) and requires the explorer to find the
 * violating schedule. If the explorer ever loses the power to catch
 * that bug class, this test fails.
 *
 * These tests are meaningful only when the model_atomic shims are live
 * (FRUGAL_MODELCHECK builds — the `modelcheck` preset); elsewhere they
 * skip, so the tier-1 suite carries them at zero cost.
 */
#include <array>
#include <cstdio>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "check/model_sync.h"
#include "check/scheduler.h"
#include "common/spinlock.h"
#include "common/types.h"
#include "pq/atomic_slot_set.h"
#include "pq/g_entry.h"
#include "pq/pq_ops.h"
#include "pq/two_level_pq.h"

namespace frugal {
namespace {

#if FRUGAL_MODELCHECK
#define FRUGAL_REQUIRE_MODELCHECK() (void)0
#else
#define FRUGAL_REQUIRE_MODELCHECK()                                       \
    GTEST_SKIP() << "built without FRUGAL_MODELCHECK shims; run via the " \
                    "'modelcheck' preset"
#endif

/** Every scenario must clear this many distinct schedules (acceptance
 *  bar; the explorer reports the exact count in the test output). */
constexpr std::uint64_t kDistinctTarget = 10000;

/** Prints and records the exploration outcome for one scenario. */
void
ReportExploration(const char *scenario, const check::Result &result)
{
    std::printf("[ modelcheck ] %s: %s\n", scenario,
                result.Summary().c_str());
    ::testing::Test::RecordProperty(
        std::string(scenario) + "_distinct_schedules",
        static_cast<int>(result.distinct_schedules));
}

check::Options
DefaultOptions()
{
    check::Options options;
    options.target_distinct = kDistinctTarget;
    options.max_dfs_schedules = 4000;
    options.max_schedules = 60000;
    return options;
}

// --------------------------------------------------------------------
// Scenario: AtomicSlotSet announce/claim with a concurrent auditor.
// --------------------------------------------------------------------

TEST(ModelCheckSlotSet, AnnounceClaimAudit)
{
    FRUGAL_REQUIRE_MODELCHECK();
    static int items[2];

    // Full bounded-DFS coverage: the announce/publish reorder needs an
    // early divergence (preempting the inserter mid-insert), which DFS
    // reaches last — so this scenario gets a budget that exhausts the
    // whole ≤2-preemption space, making detection deterministic rather
    // than probabilistic.
    check::Options options = DefaultOptions();
    options.max_dfs_schedules = 120000;
    options.max_schedules = 150000;

    const check::Result result = check::Explore(
        options, [](check::Explorer &ex) {
            auto set = std::make_shared<AtomicSlotSet<int>>(4);
            auto tally =
                std::make_shared<std::array<model_atomic<int>, 2>>();

            // Two competing poppers matter: the announce-before-publish
            // reorder only becomes observable when one popper drains the
            // announced population while another — already past the
            // occupancy gate — claims a slot whose counters were not yet
            // announced (popped overtakes published). A lone popper
            // re-checks the gate per attempt and never reaches that
            // window, and the schedule needs just two preemptions, so
            // the bounded DFS finds it deterministically.
            auto pop_once = [set, tally] {
                int *item = set->PopAny();
                if (item != nullptr)
                    (*tally)[item - items].fetch_add(1);
            };
            ex.Thread([set] {
                set->Insert(&items[0]);
                set->Insert(&items[1]);
            });
            ex.Thread(pop_once);
            ex.Thread(pop_once);
            ex.Thread([set] {
                for (int i = 0; i < 2; ++i) {
                    const auto snap = set->AuditAccounting();
                    check::ModelAssert(
                        snap.per_segment_consistent,
                        "slot-set audit: popped > published mid-run");
                    check::ModelAssert(snap.popped <= snap.announced,
                                       "slot-set audit: total popped > "
                                       "total announced");
                }
            });
            ex.Go();

            // Quiescence: whatever the popper missed is still present;
            // drain it and require each item claimed exactly once.
            for (int *item = set->PopAny(); item != nullptr;
                 item = set->PopAny()) {
                (*tally)[item - items].fetch_add(1);
            }
            ex.Check((*tally)[0].load() == 1, "item 0 claimed once");
            ex.Check((*tally)[1].load() == 1, "item 1 claimed once");
            const auto snap = set->AuditAccounting();
            ex.Check(snap.per_segment_consistent,
                     "quiescent slot-set accounting consistent");
            ex.Check(snap.announced == snap.popped,
                     "quiescent: announced == popped");
            ex.Check(set->empty(), "quiescent: set drained");
        });

    ReportExploration("SlotSetAnnounceClaimAudit", result);
    EXPECT_TRUE(result.clean()) << result.first_violation;
    EXPECT_GE(result.distinct_schedules, kDistinctTarget);
}

// --------------------------------------------------------------------
// Negative control: the PR 1 announce-before-publish reorder bug.
//
// MiniInsert replicates the exact protocol of AtomicSlotSet::Insert
// (announce the published counter, then store the pointer); the buggy
// variant restores the pre-PR 1 ordering (store the pointer first).
// Under that ordering a popper can claim the pointer and bump `popped`
// before `published` was announced, so a concurrent audit observes
// popped > published — the explorer must find such a schedule.
// --------------------------------------------------------------------

struct MiniSlotSet
{
    std::array<model_atomic<int *>, 2> slots{};
    model_atomic<std::size_t> published{0};
    model_atomic<std::size_t> popped{0};
};

void
MiniInsert(MiniSlotSet &set, std::size_t slot, int *item,
           bool announce_first)
{
    if (announce_first) {
        set.published.fetch_add(1);
        set.slots[slot].store(item);
    } else {
        // The bug shape: pointer visible before its announcement.
        set.slots[slot].store(item);
        set.published.fetch_add(1);
    }
}

void
MiniPop(MiniSlotSet &set, std::size_t slot)
{
    int *item = set.slots[slot].load();
    if (item != nullptr &&
        set.slots[slot].compare_exchange_strong(item, nullptr)) {
        set.popped.fetch_add(1);
    }
}

void
MiniAudit(MiniSlotSet &set)
{
    // Same load order as AtomicSlotSet::AuditAccounting: popped first,
    // so a racing insert can only make the check conservative.
    const std::size_t popped = set.popped.load();
    const std::size_t published = set.published.load();
    check::ModelAssert(popped <= published,
                       "audit observed popped > published");
}

check::Result
ExploreMiniProtocol(bool announce_first, const check::Options &options)
{
    static int items[2];
    return check::Explore(options, [announce_first](check::Explorer &ex) {
        auto set = std::make_shared<MiniSlotSet>();
        ex.Thread([set, announce_first] {
            MiniInsert(*set, 0, &items[0], announce_first);
            MiniInsert(*set, 1, &items[1], announce_first);
        });
        ex.Thread([set] {
            MiniPop(*set, 0);
            MiniPop(*set, 1);
            MiniPop(*set, 0);
        });
        ex.Thread([set] {
            MiniAudit(*set);
            MiniAudit(*set);
            MiniAudit(*set);
        });
        ex.Go();
        // Quiescent audit only for the expected-clean variant: a run
        // aborted by an in-run violation (the buggy variant's whole
        // point) unwinds the inserter mid-protocol, legitimately
        // leaving popped > published at rest.
        if (announce_first)
            MiniAudit(*set);
    });
}

TEST(ModelCheckSlotSet, AnnounceFirstOrderingHolds)
{
    FRUGAL_REQUIRE_MODELCHECK();
    const check::Result result =
        ExploreMiniProtocol(/*announce_first=*/true, DefaultOptions());
    ReportExploration("AnnounceFirstOrderingHolds", result);
    EXPECT_TRUE(result.clean()) << result.first_violation;
    EXPECT_GE(result.distinct_schedules, kDistinctTarget);
}

TEST(ModelCheckSlotSet, ReorderBugCaught)
{
    FRUGAL_REQUIRE_MODELCHECK();
    check::Options options = DefaultOptions();
    options.stop_on_violation = true;
    const check::Result result =
        ExploreMiniProtocol(/*announce_first=*/false, options);
    ReportExploration("ReorderBugCaught", result);
    ASSERT_GT(result.violations, 0u)
        << "the explorer failed to catch the announce-before-publish "
           "reorder bug: "
        << result.Summary();
    EXPECT_NE(result.first_violation.find("popped > published"),
              std::string::npos)
        << result.first_violation;
}

// --------------------------------------------------------------------
// TwoLevelPQ scenarios.
// --------------------------------------------------------------------

/** Per-run PQ fixture: a small sharded queue plus per-entry claim
 *  counters; built fresh by every schedule (off-model, on the driving
 *  thread, so construction adds no schedule points). */
struct PQState
{
    static constexpr std::size_t kEntries = 4;

    TwoLevelPQ queue;
    std::vector<std::unique_ptr<GEntry>> entries;
    std::array<model_atomic<int>, kEntries> claims{};

    explicit PQState(std::size_t n_shards)
        : queue(TwoLevelPQConfig{/*max_step=*/3, /*segment_slots=*/4,
                                 n_shards})
    {
        for (std::size_t i = 0; i < kEntries; ++i)
            entries.push_back(std::make_unique<GEntry>(static_cast<Key>(i)));
        queue.SetScanBounds(0, 3);
    }

    GEntry &entry(std::size_t i) { return *entries[i]; }

    /** Seeds entry `i` with R = {read_step} and one pending write, so
     *  its priority is `read_step` (Equation (1)). */
    void
    SeedPending(std::size_t i, Step read_step)
    {
        RegisterRead(queue, entry(i), read_step);
        RegisterUpdate(queue, entry(i), WriteRecord{/*step=*/0, 0, {}, {}});
    }

    /** Seeds entry `i` with a write but no reads: priority ∞. */
    void
    SeedDeferred(std::size_t i)
    {
        RegisterUpdate(queue, entry(i), WriteRecord{/*step=*/0, 0, {}, {}});
    }

    /** Records a claim, requiring it to be the first for its entry
     *  (exactly-once: nothing in these scenarios re-enqueues after a
     *  claim, so a second claim is always a duplicate). */
    void
    RecordClaim(const ClaimTicket &ticket)
    {
        const auto index = static_cast<std::size_t>(ticket.entry->key());
        const int prior = claims[index].fetch_add(1);
        check::ModelAssert(prior == 0, "entry claimed twice");
    }

    /** Claim + flush body of one model flush thread. */
    void
    FlushBatch(const std::vector<ClaimTicket> &batch)
    {
        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (i + 1 < batch.size()) {
                check::ModelAssert(
                    batch[i].priority <= batch[i + 1].priority,
                    "claim batch priorities not monotone");
            }
            RecordClaim(batch[i]);
            FlushClaimed(queue, batch[i], [](Key, const WriteRecord &) {});
        }
    }

    /** Drains everything left at quiescence and asserts the terminal
     *  invariants. Called on the driving thread after Go(). */
    void
    CheckDrainedExactlyOnce(check::Explorer &ex, std::size_t expect_claims)
    {
        std::vector<ClaimTicket> rest;
        queue.DequeueClaim(rest, kEntries * 2, 0);
        for (const ClaimTicket &ticket : rest) {
            RecordClaim(ticket);
            FlushClaimed(queue, ticket, [](Key, const WriteRecord &) {});
        }
        std::size_t total = 0;
        for (const auto &count : claims)
            total += static_cast<std::size_t>(count.load());
        ex.Check(total == expect_claims,
                 "every pending entry claimed exactly once");
        ex.Check(queue.AuditInvariants(/*quiescent=*/true) == 0,
                 "quiescent queue audit clean");
        ex.Check(!queue.HasPendingAtOrBelow(3), "gate clear at quiescence");
        ex.Check(queue.SizeApprox() == 0, "queue drained");
    }
};

// Two dequeuers with distinct shard hints race an updater that enqueues
// a fresh entry mid-run; sharded fast paths and the work-stealing
// fallback interleave freely. Checks: exactly-once claims, monotone
// batches, exact quiescent accounting.
TEST(ModelCheckTwoLevelPQ, ShardedDequeueExactlyOnce)
{
    FRUGAL_REQUIRE_MODELCHECK();
    const check::Result result = check::Explore(
        DefaultOptions(), [](check::Explorer &ex) {
            auto st = std::make_shared<PQState>(/*n_shards=*/2);
            st->SeedPending(0, /*read_step=*/1);
            st->SeedPending(1, /*read_step=*/2);
            st->SeedDeferred(2);

            ex.Thread([st] {
                // Staging drain registers a new update concurrently.
                RegisterRead(st->queue, st->entry(3), /*step=*/1);
                RegisterUpdate(st->queue, st->entry(3),
                               WriteRecord{/*step=*/0, 0, {}, {}});
            });
            ex.Thread([st] {
                std::vector<ClaimTicket> batch;
                st->queue.DequeueClaim(batch, 2, /*shard_hint=*/0);
                st->FlushBatch(batch);
            });
            ex.Thread([st] {
                std::vector<ClaimTicket> batch;
                st->queue.DequeueClaim(batch, 2, /*shard_hint=*/1);
                st->FlushBatch(batch);
            });
            ex.Go();
            st->CheckDrainedExactlyOnce(ex, /*expect_claims=*/4);
        });

    ReportExploration("ShardedDequeueExactlyOnce", result);
    EXPECT_TRUE(result.clean()) << result.first_violation;
    EXPECT_GE(result.distinct_schedules, kDistinctTarget);
}

// A cooperative (gate-blocked trainer) DequeueClaimBelow with the
// ceiling equal to the minimum live priority races a general flusher
// drain with a different shard hint (so the flusher reaches the
// cooperative claimer's shard only by stealing). Checks: the ceiling is
// honoured (the ∞ entry is never claimed by the cooperative path),
// batches stay monotone, claims stay exactly-once.
TEST(ModelCheckTwoLevelPQ, DequeueClaimBelowRacesFlusher)
{
    FRUGAL_REQUIRE_MODELCHECK();
    const check::Result result = check::Explore(
        DefaultOptions(), [](check::Explorer &ex) {
            auto st = std::make_shared<PQState>(/*n_shards=*/2);
            st->SeedPending(0, /*read_step=*/1);
            st->SeedPending(1, /*read_step=*/2);
            st->SeedDeferred(2);

            ex.Thread([st] {
                // Cooperative path: claim exactly the gate-blocking
                // entries (priority ≤ 1), leave the rest batching.
                std::vector<ClaimTicket> batch;
                st->queue.DequeueClaimBelow(batch, 4, /*shard_hint=*/0,
                                            /*ceiling=*/1);
                for (const ClaimTicket &ticket : batch) {
                    check::ModelAssert(
                        ticket.priority <= 1,
                        "cooperative claim exceeded its ceiling");
                }
                st->FlushBatch(batch);
            });
            ex.Thread([st] {
                std::vector<ClaimTicket> batch;
                st->queue.DequeueClaim(batch, 4, /*shard_hint=*/1);
                st->FlushBatch(batch);
            });
            ex.Go();
            st->CheckDrainedExactlyOnce(ex, /*expect_claims=*/3);
        });

    ReportExploration("DequeueClaimBelowRacesFlusher", result);
    EXPECT_TRUE(result.clean()) << result.first_violation;
    EXPECT_GE(result.distinct_schedules, kDistinctTarget);
}

// The P²F gate races the flusher and a concurrent enqueue. Entry 0 has
// a pending write read by step 1, seeded before the run, so whenever
// the gate for step 1 reports clear the write MUST already be in host
// memory — in particular during the claimed-but-not-yet-applied window,
// which only the in-flight accounting covers. A third thread enqueues
// an unrelated priority-2 entry mid-run to exercise the gate's bucket
// scan against concurrent logical-count updates.
TEST(ModelCheckTwoLevelPQ, GateVsEnqueueAndFlush)
{
    FRUGAL_REQUIRE_MODELCHECK();
    const check::Result result = check::Explore(
        DefaultOptions(), [](check::Explorer &ex) {
            auto st = std::make_shared<PQState>(/*n_shards=*/2);
            auto host = std::make_shared<model_atomic<int>>(0);
            st->SeedPending(0, /*read_step=*/1);

            ex.Thread([st, host] {
                // Flush thread: claim the gate-blocking entry and apply
                // its write to "host memory".
                std::vector<ClaimTicket> batch;
                st->queue.DequeueClaimBelow(batch, 2, /*shard_hint=*/0,
                                            /*ceiling=*/1);
                for (const ClaimTicket &ticket : batch) {
                    st->RecordClaim(ticket);
                    FlushClaimed(st->queue, ticket,
                                 [host](Key, const WriteRecord &) {
                                     host->store(1);
                                 });
                }
            });
            ex.Thread([st, host] {
                // Trainer at step 1: polls the gate a bounded number of
                // times; every "clear" observation asserts the P²F
                // invariant (never claimed-but-unapplied).
                for (int attempt = 0; attempt < 3; ++attempt) {
                    if (!st->queue.HasPendingAtOrBelow(1)) {
                        check::ModelAssert(
                            host->load() == 1,
                            "gate opened before the pending write "
                            "reached host memory");
                    }
                }
            });
            ex.Thread([st] {
                // Staging drain enqueues an unrelated later-step entry
                // while the gate scans the bucket counters.
                RegisterRead(st->queue, st->entry(1), /*step=*/2);
                RegisterUpdate(st->queue, st->entry(1),
                               WriteRecord{/*step=*/0, 0, {}, {}});
            });
            ex.Go();
            ex.Check(host->load() == 1 || st->claims[0].load() == 0,
                     "claimed write applied by run end");
            st->CheckDrainedExactlyOnce(ex, /*expect_claims=*/2);
            ex.Check(host->load() == 1, "host memory holds the update");
        });

    ReportExploration("GateVsEnqueueAndFlush", result);
    EXPECT_TRUE(result.clean()) << result.first_violation;
    EXPECT_GE(result.distinct_schedules, kDistinctTarget);
}

// --------------------------------------------------------------------
// Bounded-queue gate protocol (BlockingQueue::PushFor / Pop).
//
// BlockingQueue itself runs on std::mutex + condition_variable, which
// the explorer does not shim; what it CAN check is the gate protocol
// those primitives implement: the push-full and pop-empty gates must be
// (re-)evaluated under the same lock that guards the buffer.
// MiniBoundedQueue reproduces exactly that protocol over Spinlock +
// model_atomic. The buggy variant samples the push gate *before* taking
// the lock (the size()-then-Push TOCTOU a caller could write against
// the real queue); the explorer must find the schedule where two
// producers both pass the stale gate and overshoot the capacity bound.
// --------------------------------------------------------------------

struct MiniBoundedQueue
{
    static constexpr std::size_t kCapacity = 2;
    // Ring has slack beyond the capacity bound so the buggy variant's
    // overshoot is observed by the occupancy assert, not by memory
    // corruption.
    static constexpr std::size_t kSlots = kCapacity + 2;

    Spinlock lock;
    std::array<int, kSlots> ring{};
    std::size_t head = 0;  // guarded by lock
    std::size_t tail = 0;  // guarded by lock
    model_atomic<std::size_t> occupancy{0};
    model_atomic<std::size_t> pushed_count{0};
    model_atomic<int> pushed_sum{0};
    model_atomic<std::size_t> popped_count{0};
    model_atomic<int> popped_sum{0};

    /** One bounded-push attempt (the body of PushFor after its wait
     *  came back "not full"): returns false when the gate holds it
     *  back — the caller's throttle path. */
    bool
    TryPush(int value, bool gate_under_lock)
    {
        if (!gate_under_lock &&
            occupancy.load() >= kCapacity)  // TOCTOU: stale gate
            return false;
        SpinGuard guard(lock);
        if (gate_under_lock && occupancy.load() >= kCapacity)
            return false;
        ring[tail % kSlots] = value;
        ++tail;
        const std::size_t occ = occupancy.fetch_add(1) + 1;
        check::ModelAssert(occ <= kCapacity,
                           "push-full gate breached: occupancy "
                           "exceeded capacity");
        pushed_count.fetch_add(1);
        pushed_sum.fetch_add(value);
        return true;
    }

    /** One pop attempt; false on the empty gate. */
    bool
    TryPop()
    {
        SpinGuard guard(lock);
        if (occupancy.load() == 0)
            return false;
        const std::size_t before = occupancy.fetch_sub(1);
        check::ModelAssert(before >= 1,
                           "pop-empty gate breached: occupancy "
                           "underflow");
        const int value = ring[head % kSlots];
        ++head;
        popped_count.fetch_add(1);
        popped_sum.fetch_add(value);
        return true;
    }
};

check::Result
ExploreBoundedQueue(bool gate_under_lock, const check::Options &options)
{
    return check::Explore(options, [gate_under_lock](check::Explorer &ex) {
        auto queue = std::make_shared<MiniBoundedQueue>();
        // Pre-seeded to capacity − 1 (off-model, driving thread): both
        // producers then race for the single free slot, which is the
        // exact window where the stale-gate variant overshoots.
        queue->TryPush(1, /*gate_under_lock=*/true);

        ex.Thread([queue, gate_under_lock] {
            (void)queue->TryPush(10, gate_under_lock);
        });
        ex.Thread([queue, gate_under_lock] {
            (void)queue->TryPush(20, gate_under_lock);
        });
        ex.Thread([queue] {
            (void)queue->TryPop();
            (void)queue->TryPop();
        });
        ex.Thread([queue] {
            for (int i = 0; i < 2; ++i) {
                check::ModelAssert(
                    queue->occupancy.load() <=
                        MiniBoundedQueue::kCapacity,
                    "auditor observed occupancy above capacity");
            }
        });
        ex.Go();

        // Quiescent conservation only for the expected-clean variant: a
        // violation-aborted run unwinds producers mid-protocol and the
        // counters legitimately disagree.
        if (gate_under_lock) {
            while (queue->TryPop()) {
            }
            ex.Check(queue->occupancy.load() == 0,
                     "quiescent: queue drained");
            ex.Check(queue->popped_count.load() ==
                         queue->pushed_count.load(),
                     "every accepted item popped exactly once");
            ex.Check(queue->popped_sum.load() ==
                         queue->pushed_sum.load(),
                     "popped values match pushed values");
        }
    });
}

TEST(ModelCheckBoundedQueue, GateUnderLockHoldsCapacityBound)
{
    FRUGAL_REQUIRE_MODELCHECK();
    const check::Result result =
        ExploreBoundedQueue(/*gate_under_lock=*/true, DefaultOptions());
    ReportExploration("BoundedQueueGateUnderLock", result);
    EXPECT_TRUE(result.clean()) << result.first_violation;
    EXPECT_GE(result.distinct_schedules, kDistinctTarget);
}

TEST(ModelCheckBoundedQueue, StaleGateOvershootCaught)
{
    FRUGAL_REQUIRE_MODELCHECK();
    check::Options options = DefaultOptions();
    options.stop_on_violation = true;
    const check::Result result =
        ExploreBoundedQueue(/*gate_under_lock=*/false, options);
    ReportExploration("BoundedQueueStaleGateCaught", result);
    ASSERT_GT(result.violations, 0u)
        << "the explorer failed to catch the stale push-full gate: "
        << result.Summary();
    EXPECT_NE(result.first_violation.find("gate breached"),
              std::string::npos)
        << result.first_violation;
}

}  // namespace
}  // namespace frugal
