/**
 * Model tests: analytic gradients of the MLP and the four KG scorers are
 * checked against central finite differences, and the replicated-dense
 * machinery is verified to keep replicas bit-identical.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "models/kg_scorers.h"
#include "models/mlp.h"

namespace frugal {
namespace {

// ---------------------------------------------------------------------
// KG scorer gradient checks (parameterised over the scorer kind).
// ---------------------------------------------------------------------

class KgScorerGradTest : public ::testing::TestWithParam<KgScorerKind>
{
};

TEST_P(KgScorerGradTest, MatchesFiniteDifferences)
{
    const KgScorerKind kind = GetParam();
    constexpr std::size_t kDim = 8;
    constexpr double kEps = 1e-3;
    Rng rng(123);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<float> h(kDim), r(kDim), t(kDim);
        for (std::size_t j = 0; j < kDim; ++j) {
            h[j] = static_cast<float>(rng.NextGaussian(0, 0.5));
            r[j] = static_cast<float>(rng.NextGaussian(0, 0.5));
            t[j] = static_cast<float>(rng.NextGaussian(0, 0.5));
        }
        std::vector<float> gh(kDim, 0), gr(kDim, 0), gt(kDim, 0);
        AccumulateTripleGrad(kind, h.data(), r.data(), t.data(), kDim,
                             1.0f, gh.data(), gr.data(), gt.data());

        auto check = [&](std::vector<float> &vec,
                         const std::vector<float> &grad,
                         const char *name) {
            for (std::size_t j = 0; j < kDim; ++j) {
                const float saved = vec[j];
                vec[j] = saved + static_cast<float>(kEps);
                const double up = ScoreTriple(kind, h.data(), r.data(),
                                              t.data(), kDim);
                vec[j] = saved - static_cast<float>(kEps);
                const double dn = ScoreTriple(kind, h.data(), r.data(),
                                              t.data(), kDim);
                vec[j] = saved;
                const double fd = (up - dn) / (2 * kEps);
                EXPECT_NEAR(grad[j], fd, 5e-3)
                    << name << "[" << j << "] trial " << trial;
            }
        };
        check(h, gh, "h");
        check(r, gr, "r");
        check(t, gt, "t");
    }
}

TEST_P(KgScorerGradTest, DscaleScalesLinearly)
{
    const KgScorerKind kind = GetParam();
    constexpr std::size_t kDim = 4;
    std::vector<float> h = {0.1f, -0.2f, 0.3f, 0.4f};
    std::vector<float> r = {0.2f, 0.1f, -0.3f, 0.2f};
    std::vector<float> t = {-0.1f, 0.2f, 0.1f, -0.4f};
    std::vector<float> g1(kDim * 3, 0), g2(kDim * 3, 0);
    AccumulateTripleGrad(kind, h.data(), r.data(), t.data(), kDim, 1.0f,
                         g1.data(), g1.data() + kDim,
                         g1.data() + 2 * kDim);
    AccumulateTripleGrad(kind, h.data(), r.data(), t.data(), kDim, -2.5f,
                         g2.data(), g2.data() + kDim,
                         g2.data() + 2 * kDim);
    for (std::size_t i = 0; i < g1.size(); ++i)
        EXPECT_NEAR(g2[i], -2.5f * g1[i], 1e-5);
}

INSTANTIATE_TEST_SUITE_P(AllScorers, KgScorerGradTest,
                         ::testing::Values(KgScorerKind::kTransE,
                                           KgScorerKind::kDistMult,
                                           KgScorerKind::kComplEx,
                                           KgScorerKind::kSimplE),
                         [](const auto &info) {
                             return KgScorerName(info.param);
                         });

TEST(KgScorerTest, NamesRoundTrip)
{
    for (KgScorerKind kind :
         {KgScorerKind::kTransE, KgScorerKind::kDistMult,
          KgScorerKind::kComplEx, KgScorerKind::kSimplE}) {
        EXPECT_EQ(KgScorerByName(KgScorerName(kind)), kind);
    }
}

TEST(KgScorerTest, TransEPerfectTripleScoresGamma)
{
    // h + r == t ⇒ distance 0 ⇒ score = γ.
    std::vector<float> h = {0.1f, 0.2f}, r = {0.3f, -0.1f};
    std::vector<float> t = {0.4f, 0.1f};
    EXPECT_NEAR(ScoreTriple(KgScorerKind::kTransE, h.data(), r.data(),
                            t.data(), 2, 12.0),
                12.0, 1e-6);
}

// ---------------------------------------------------------------------
// MLP
// ---------------------------------------------------------------------

MlpConfig
SmallMlp()
{
    MlpConfig config;
    config.layers = {6, 8, 4};
    config.learning_rate = 0.1f;
    config.seed = 5;
    return config;
}

TEST(MlpTest, PredictInUnitInterval)
{
    Mlp mlp(SmallMlp());
    Rng rng(1);
    std::vector<float> x(6);
    for (int i = 0; i < 100; ++i) {
        for (float &v : x)
            v = static_cast<float>(rng.NextGaussian());
        const float p = mlp.Predict(x.data());
        ASSERT_GT(p, 0.0f);
        ASSERT_LT(p, 1.0f);
    }
}

TEST(MlpTest, InputGradientMatchesFiniteDifferences)
{
    Mlp mlp(SmallMlp());
    Rng rng(2);
    std::vector<float> x(6);
    for (float &v : x)
        v = static_cast<float>(rng.NextGaussian(0, 0.5));
    std::vector<float> gx(6, 0.0f);
    const float label = 1.0f;
    // Copy so parameter-gradient accumulation does not disturb checks.
    Mlp probe(SmallMlp());
    probe.TrainExample(x.data(), label, gx.data());

    constexpr double kEps = 1e-3;
    for (std::size_t j = 0; j < 6; ++j) {
        auto loss_at = [&](float xj) {
            std::vector<float> xx = x;
            xx[j] = xj;
            const float p = mlp.Predict(xx.data());
            return -std::log(static_cast<double>(p) + 1e-7);
        };
        const double fd =
            (loss_at(x[j] + static_cast<float>(kEps)) -
             loss_at(x[j] - static_cast<float>(kEps))) /
            (2 * kEps);
        EXPECT_NEAR(gx[j], fd, 2e-3) << "input " << j;
    }
}

TEST(MlpTest, ParameterGradientMatchesFiniteDifferences)
{
    MlpConfig config = SmallMlp();
    Mlp mlp(config);
    Rng rng(3);
    std::vector<float> x(6);
    for (float &v : x)
        v = static_cast<float>(rng.NextGaussian(0, 0.5));
    std::vector<float> gx(6, 0.0f);
    const float label = 0.0f;
    mlp.TrainExample(x.data(), label, gx.data());
    const std::vector<float> grads = mlp.gradients();

    constexpr double kEps = 1e-3;
    // Spot-check a spread of parameters (checking all ~100 is fine too
    // but adds nothing).
    for (std::size_t p = 0; p < mlp.parameter_count();
         p += mlp.parameter_count() / 17 + 1) {
        const float saved = mlp.parameters()[p];
        auto loss_at = [&](float v) {
            mlp.parameters()[p] = v;
            const float prob = mlp.Predict(x.data());
            mlp.parameters()[p] = saved;
            return -std::log(1.0 - static_cast<double>(prob) + 1e-7);
        };
        const double fd =
            (loss_at(saved + static_cast<float>(kEps)) -
             loss_at(saved - static_cast<float>(kEps))) /
            (2 * kEps);
        EXPECT_NEAR(grads[p], fd, 2e-3) << "param " << p;
    }
}

TEST(MlpTest, LearnsLinearlySeparableData)
{
    MlpConfig config;
    config.layers = {4, 16};
    config.learning_rate = 0.5f;
    config.seed = 7;
    Mlp mlp(config);
    Rng rng(11);
    std::vector<float> x(4), gx(4);
    double early = 0.0, late = 0.0;
    constexpr int kSteps = 2000;
    for (int i = 0; i < kSteps; ++i) {
        float sum = 0.0f;
        for (float &v : x) {
            v = static_cast<float>(rng.NextGaussian());
            sum += v;
        }
        const float label = sum > 0 ? 1.0f : 0.0f;
        gx.assign(4, 0.0f);
        const float loss = mlp.TrainExample(x.data(), label, gx.data());
        mlp.ApplyAccumulatedGradients(1.0f);
        if (i < 200)
            early += loss;
        if (i >= kSteps - 200)
            late += loss;
    }
    EXPECT_LT(late, 0.6 * early);  // clear learning signal
}

TEST(MlpTest, ResetRestoresInitialParameters)
{
    Mlp a(SmallMlp());
    const std::vector<float> init = a.parameters();
    std::vector<float> x(6, 0.5f), gx(6, 0.0f);
    a.TrainExample(x.data(), 1.0f, gx.data());
    a.ApplyAccumulatedGradients(1.0f);
    EXPECT_NE(a.parameters(), init);
    a.Reset();
    EXPECT_EQ(a.parameters(), init);
}

TEST(ReplicatedMlpTest, ReplicasStayBitIdentical)
{
    ReplicatedMlp replicas(SmallMlp(), 3);
    Rng rng(13);
    std::vector<float> x(6), gx(6);
    for (int step = 0; step < 20; ++step) {
        std::size_t examples = 0;
        for (std::uint32_t g = 0; g < 3; ++g) {
            for (int i = 0; i < 4; ++i) {
                for (float &v : x)
                    v = static_cast<float>(rng.NextGaussian());
                gx.assign(6, 0.0f);
                replicas.replica(g).TrainExample(
                    x.data(), i % 2 ? 1.0f : 0.0f, gx.data());
                ++examples;
            }
        }
        replicas.AllReduceAndStep(examples);
        EXPECT_EQ(replicas.replica(0).parameters(),
                  replicas.replica(1).parameters());
        EXPECT_EQ(replicas.replica(0).parameters(),
                  replicas.replica(2).parameters());
    }
}

TEST(ReplicatedMlpTest, MatchesSingleReplicaOnSameExamples)
{
    // 2 replicas splitting a batch must equal 1 replica seeing the whole
    // batch (the all-reduce is a mean over all examples).
    ReplicatedMlp two(SmallMlp(), 2);
    ReplicatedMlp one(SmallMlp(), 1);
    Rng rng(17);
    std::vector<float> x(6), gx(6);
    std::vector<std::vector<float>> batch;
    std::vector<float> labels;
    for (int i = 0; i < 8; ++i) {
        for (float &v : x)
            v = static_cast<float>(rng.NextGaussian());
        batch.push_back(x);
        labels.push_back(i % 2 ? 1.0f : 0.0f);
    }
    for (int i = 0; i < 8; ++i) {
        gx.assign(6, 0.0f);
        two.replica(i < 4 ? 0 : 1).TrainExample(batch[i].data(),
                                                labels[i], gx.data());
        gx.assign(6, 0.0f);
        one.replica(0).TrainExample(batch[i].data(), labels[i],
                                    gx.data());
    }
    two.AllReduceAndStep(8);
    one.AllReduceAndStep(8);
    const auto &p2 = two.replica(0).parameters();
    const auto &p1 = one.replica(0).parameters();
    for (std::size_t i = 0; i < p1.size(); ++i)
        ASSERT_NEAR(p1[i], p2[i], 1e-6);
}

}  // namespace
}  // namespace frugal
