/** Tests for the lock-free slot multiset behind the two-level PQ. */
#include "pq/atomic_slot_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace frugal {
namespace {

TEST(AtomicSlotSetTest, InsertThenPop)
{
    AtomicSlotSet<int> set;
    int a = 1, b = 2;
    set.Insert(&a);
    set.Insert(&b);
    EXPECT_EQ(set.size(), 2u);
    std::set<int *> popped;
    popped.insert(set.PopAny());
    popped.insert(set.PopAny());
    EXPECT_TRUE(popped.count(&a));
    EXPECT_TRUE(popped.count(&b));
    EXPECT_EQ(set.PopAny(), nullptr);
    EXPECT_TRUE(set.empty());
}

TEST(AtomicSlotSetTest, GrowsPastOneSegment)
{
    AtomicSlotSet<int> set(/*segment_slots=*/4);
    std::vector<int> values(100);
    for (int &v : values)
        set.Insert(&v);
    EXPECT_EQ(set.size(), 100u);
    int popped = 0;
    while (set.PopAny() != nullptr)
        ++popped;
    EXPECT_EQ(popped, 100);
}

TEST(AtomicSlotSetTest, DuplicateInsertionAllowed)
{
    AtomicSlotSet<int> set;
    int a = 1;
    set.Insert(&a);
    set.Insert(&a);
    EXPECT_EQ(set.PopAny(), &a);
    EXPECT_EQ(set.PopAny(), &a);
    EXPECT_EQ(set.PopAny(), nullptr);
}

TEST(AtomicSlotSetTest, InterleavedInsertPopReusesNothingButStaysCorrect)
{
    AtomicSlotSet<int> set(/*segment_slots=*/8);
    std::vector<int> values(1000);
    // Insert/pop churn with the set held near-empty; exercises the scan
    // head advancement over exhausted segments.
    for (int round = 0; round < 1000; ++round) {
        set.Insert(&values[round]);
        ASSERT_EQ(set.PopAny(), &values[round]);
        ASSERT_EQ(set.PopAny(), nullptr);
    }
}

TEST(AtomicSlotSetTest, ConcurrentInsertPopConservesElements)
{
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;
    AtomicSlotSet<std::atomic<int>> set(/*segment_slots=*/64);
    std::vector<std::atomic<int>> tokens(kThreads * kPerThread);
    for (auto &t : tokens)
        t.store(0);

    std::atomic<int> produced{0};
    std::atomic<int> consumed{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                set.Insert(&tokens[t * kPerThread + i]);
                produced++;
                // Pop opportunistically to create churn.
                if (auto *p = set.PopAny()) {
                    p->fetch_add(1);
                    consumed++;
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();
    // Drain the rest.
    while (auto *p = set.PopAny()) {
        p->fetch_add(1);
        consumed++;
    }
    EXPECT_EQ(produced.load(), kThreads * kPerThread);
    EXPECT_EQ(consumed.load(), produced.load());
    // Every token popped exactly once.
    for (auto &t : tokens)
        ASSERT_EQ(t.load(), 1);
    EXPECT_TRUE(set.empty());
}

TEST(AtomicSlotSetTest, SizeTracksOccupancy)
{
    AtomicSlotSet<int> set;
    std::vector<int> values(10);
    for (std::size_t i = 0; i < values.size(); ++i) {
        set.Insert(&values[i]);
        EXPECT_EQ(set.size(), i + 1);
    }
    for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_NE(set.PopAny(), nullptr);
        EXPECT_EQ(set.size(), values.size() - i - 1);
    }
}

}  // namespace
}  // namespace frugal
