/**
 * Concurrent, model-based tests that drive both FlushQueue
 * implementations through a miniature P²F workload: a foreground thread
 * executes gated training steps while background flush threads claim and
 * drain entries. Verifies, under real races:
 *   - the paper's invariant (2): no parameter is read at step s while it
 *     has pending (unflushed) writes;
 *   - conservation: every emitted update is flushed exactly once;
 *   - the gate eventually opens (liveness).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/distribution.h"
#include "common/rng.h"
#include "pq/g_entry_registry.h"
#include "pq/pq_ops.h"
#include "pq/tree_heap_pq.h"
#include "pq/two_level_pq.h"

namespace frugal {
namespace {

struct ParamCase
{
    std::string queue;  // "two-level" or "tree-heap"
    int flushers;
    int keys;
    int steps;
    int batch;
    double zipf_theta;  // 0 = uniform
};

class PqConcurrentTest : public ::testing::TestWithParam<ParamCase>
{
};

std::unique_ptr<FlushQueue>
MakeQueue(const std::string &name, Step max_step)
{
    if (name == "two-level") {
        TwoLevelPQConfig config;
        config.max_step = max_step;
        config.segment_slots = 8;
        return std::make_unique<TwoLevelPQ>(config);
    }
    return std::make_unique<TreeHeapPQ>();
}

TEST_P(PqConcurrentTest, GatedTrainingPreservesInvariantAndConserves)
{
    const ParamCase param = GetParam();
    const Step lookahead = 4;

    auto queue = MakeQueue(param.queue, param.steps);
    GEntryRegistry registry(16);

    // Pre-generate the whole trace (deduped keys per step).
    Rng rng(1234);
    std::unique_ptr<KeyDistribution> dist =
        param.zipf_theta > 0
            ? MakeDistribution(DistributionKind::kZipf, param.keys,
                               param.zipf_theta)
            : MakeDistribution(DistributionKind::kUniform, param.keys);
    std::vector<std::vector<Key>> trace(param.steps);
    for (int s = 0; s < param.steps; ++s) {
        std::vector<bool> seen(param.keys, false);
        for (int i = 0; i < param.batch; ++i) {
            const Key k = dist->Sample(rng);
            if (!seen[k]) {
                seen[k] = true;
                trace[s].push_back(k);
            }
        }
    }

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> flushed_records{0};
    std::atomic<std::uint64_t> gate_violations{0};

    // Background flush threads.
    std::vector<std::thread> flushers;
    for (int f = 0; f < param.flushers; ++f) {
        flushers.emplace_back([&] {
            auto noop_apply = [](Key, const WriteRecord &) {};
            std::vector<ClaimTicket> claimed;
            while (!stop.load(std::memory_order_acquire)) {
                claimed.clear();
                if (queue->DequeueClaim(claimed, 8) == 0) {
                    std::this_thread::yield();
                    continue;
                }
                for (const ClaimTicket &ticket : claimed)
                    flushed_records += FlushClaimed(*queue, ticket,
                                                    noop_apply);
            }
            // Final drain after training stops.
            for (;;) {
                claimed.clear();
                if (queue->DequeueClaim(claimed, 8) == 0)
                    break;
                for (const ClaimTicket &ticket : claimed)
                    flushed_records += FlushClaimed(*queue, ticket,
                                                    noop_apply);
            }
        });
    }

    std::uint64_t emitted_records = 0;
    Step prefetched_through = 0;  // exclusive frontier

    auto prefetch_to = [&](Step horizon) {
        while (prefetched_through < horizon &&
               prefetched_through < static_cast<Step>(param.steps)) {
            for (Key k : trace[prefetched_through])
                RegisterRead(*queue, registry.GetOrCreate(k),
                             prefetched_through);
            ++prefetched_through;
        }
    };

    prefetch_to(lookahead);
    for (Step s = 0; s < static_cast<Step>(param.steps); ++s) {
        queue->SetScanBounds(s, s + lookahead);
        // The P²F gate: spin until PQ.top() > s.
        while (queue->HasPendingAtOrBelow(s))
            std::this_thread::yield();
        // Audit invariant (2) on every key this step reads.
        for (Key k : trace[s]) {
            GEntry &entry = registry.GetOrCreate(k);
            SpinGuard guard(entry.lock());
            if (entry.hasWritesLocked())
                ++gate_violations;
        }
        // "Backward pass": every read key produces one update.
        for (Key k : trace[s]) {
            RegisterUpdate(*queue, registry.GetOrCreate(k),
                           {s, 0, {static_cast<float>(s)}});
            ++emitted_records;
        }
        prefetch_to(s + 1 + lookahead);
    }

    stop.store(true, std::memory_order_release);
    for (auto &t : flushers)
        t.join();

    EXPECT_EQ(gate_violations.load(), 0u);
    EXPECT_EQ(flushed_records.load(), emitted_records);
    EXPECT_EQ(queue->SizeApprox(), 0u);
    // Every entry fully drained.
    registry.ForEach([&](GEntry &entry) {
        SpinGuard guard(entry.lock());
        EXPECT_FALSE(entry.hasWritesLocked());
        EXPECT_FALSE(entry.enqueuedLocked());
    });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PqConcurrentTest,
    ::testing::Values(
        ParamCase{"two-level", 1, 64, 200, 16, 0.0},
        ParamCase{"two-level", 2, 64, 200, 16, 0.0},
        ParamCase{"two-level", 4, 256, 300, 32, 0.9},
        ParamCase{"two-level", 4, 64, 300, 32, 0.99},
        ParamCase{"two-level", 8, 512, 200, 64, 0.9},
        ParamCase{"tree-heap", 1, 64, 200, 16, 0.0},
        ParamCase{"tree-heap", 2, 64, 200, 16, 0.0},
        ParamCase{"tree-heap", 4, 256, 300, 32, 0.9},
        ParamCase{"tree-heap", 8, 512, 200, 64, 0.99},
        ParamCase{"two-level", 3, 1024, 400, 48, 0.99},
        ParamCase{"tree-heap", 3, 1024, 400, 48, 0.0}),
    [](const ::testing::TestParamInfo<ParamCase> &info) {
        const ParamCase &p = info.param;
        std::string name = p.queue + "_f" + std::to_string(p.flushers) +
                           "_k" + std::to_string(p.keys) + "_s" +
                           std::to_string(p.steps) + "_b" +
                           std::to_string(p.batch);
        for (char &c : name)
            if (c == '-' || c == '.')
                c = '_';
        return name;
    });

}  // namespace
}  // namespace frugal
