/** Tests for the g-entry metadata record and the Equation (1) priority. */
#include "pq/g_entry.h"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "pq/g_entry_registry.h"

namespace frugal {
namespace {

/** Convenience: run `fn` with the entry lock held. */
template <typename Fn>
auto
WithLock(GEntry &e, Fn &&fn)
{
    SpinGuard guard(e.lock());
    return fn();
}

TEST(GEntryTest, FreshEntryIsIdle)
{
    GEntry e(7);
    EXPECT_EQ(e.key(), 7u);
    WithLock(e, [&] {
        EXPECT_EQ(e.priorityLocked(), kInfiniteStep);
        EXPECT_FALSE(e.hasWritesLocked());
        EXPECT_FALSE(e.hasReadsLocked());
        EXPECT_FALSE(e.enqueuedLocked());
        return 0;
    });
}

TEST(GEntryTest, ReadAloneKeepsInfinitePriority)
{
    // Equation (1): priority is ∞ while the W set is empty.
    GEntry e(1);
    WithLock(e, [&] {
        auto [old_p, new_p] = e.AddReadLocked(5);
        EXPECT_EQ(old_p, kInfiniteStep);
        EXPECT_EQ(new_p, kInfiniteStep);
        return 0;
    });
}

TEST(GEntryTest, WriteWithPendingReadSetsPriorityToMinRead)
{
    GEntry e(1);
    WithLock(e, [&] {
        e.AddReadLocked(3);
        e.AddReadLocked(8);
        auto [old_p, new_p] = e.AddWriteLocked({2, 0, {}});
        EXPECT_EQ(old_p, kInfiniteStep);
        EXPECT_EQ(new_p, 3u);
        return 0;
    });
}

TEST(GEntryTest, WriteWithoutReadsIsInfinite)
{
    GEntry e(1);
    WithLock(e, [&] {
        auto [old_p, new_p] = e.AddWriteLocked({2, 0, {}});
        EXPECT_EQ(new_p, kInfiniteStep);
        (void)old_p;
        return 0;
    });
}

TEST(GEntryTest, RemoveReadAdvancesPriority)
{
    GEntry e(1);
    WithLock(e, [&] {
        e.AddReadLocked(3);
        e.AddReadLocked(8);
        e.AddWriteLocked({2, 0, {}});
        auto [old_p, new_p] = e.RemoveReadLocked(3);
        EXPECT_EQ(old_p, 3u);
        EXPECT_EQ(new_p, 8u);
        return 0;
    });
}

TEST(GEntryTest, RemoveLastReadGoesInfinite)
{
    GEntry e(1);
    WithLock(e, [&] {
        e.AddReadLocked(3);
        e.AddWriteLocked({2, 0, {}});
        auto [old_p, new_p] = e.RemoveReadLocked(3);
        EXPECT_EQ(old_p, 3u);
        EXPECT_EQ(new_p, kInfiniteStep);
        return 0;
    });
}

TEST(GEntryTest, RemoveMiddleRead)
{
    GEntry e(1);
    WithLock(e, [&] {
        e.AddReadLocked(3);
        e.AddReadLocked(5);
        e.AddReadLocked(9);
        e.AddWriteLocked({1, 0, {}});
        e.RemoveReadLocked(5);  // not the front
        EXPECT_EQ(e.priorityLocked(), 3u);
        EXPECT_EQ(e.readCountLocked(), 2u);
        e.RemoveReadLocked(3);
        EXPECT_EQ(e.priorityLocked(), 9u);
        return 0;
    });
}

TEST(GEntryTest, RemoveAbsentReadIsNoOp)
{
    GEntry e(1);
    WithLock(e, [&] {
        e.AddReadLocked(4);
        e.AddWriteLocked({1, 0, {}});
        e.RemoveReadLocked(99);
        EXPECT_EQ(e.priorityLocked(), 4u);
        EXPECT_EQ(e.readCountLocked(), 1u);
        return 0;
    });
}

TEST(GEntryTest, DuplicateReadInSameStepDeduped)
{
    GEntry e(1);
    WithLock(e, [&] {
        e.AddReadLocked(4);
        e.AddReadLocked(4);
        EXPECT_EQ(e.readCountLocked(), 1u);
        return 0;
    });
}

TEST(GEntryTest, TakeWritesEmptiesAndRecomputes)
{
    GEntry e(1);
    WithLock(e, [&] {
        e.AddReadLocked(6);
        e.AddWriteLocked({2, 0, {1.0f, 2.0f}});
        e.AddWriteLocked({4, 1, {3.0f}});
        auto writes = e.TakeWritesLocked();
        EXPECT_EQ(writes.size(), 2u);
        EXPECT_EQ(writes[0].step, 2u);
        EXPECT_EQ(writes[0].grad.size(), 2u);
        EXPECT_EQ(writes[1].src, 1u);
        EXPECT_FALSE(e.hasWritesLocked());
        // W empty ⇒ priority back to ∞ even with reads pending.
        EXPECT_EQ(e.priorityLocked(), kInfiniteStep);
        return 0;
    });
}

TEST(GEntryTest, NextReadReported)
{
    GEntry e(1);
    WithLock(e, [&] {
        EXPECT_EQ(e.nextReadLocked(), kInfiniteStep);
        e.AddReadLocked(11);
        EXPECT_EQ(e.nextReadLocked(), 11u);
        return 0;
    });
}

TEST(GEntryRegistryTest, GetOrCreateIsStable)
{
    GEntryRegistry registry(8);
    GEntry &a = registry.GetOrCreate(42);
    GEntry &b = registry.GetOrCreate(42);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_EQ(registry.Find(42), &a);
    EXPECT_EQ(registry.Find(43), nullptr);
}

TEST(GEntryRegistryTest, ForEachVisitsAll)
{
    GEntryRegistry registry(4);
    for (Key k = 0; k < 100; ++k)
        registry.GetOrCreate(k);
    int visited = 0;
    registry.ForEach([&](GEntry &) { ++visited; });
    EXPECT_EQ(visited, 100);
    EXPECT_EQ(registry.size(), 100u);
}

TEST(GEntryRegistryTest, GetOrCreateBatchMatchesSingles)
{
    GEntryRegistry batched(8), singles(8);
    // Unsorted keys with duplicates and a key that already exists.
    batched.GetOrCreate(17);
    singles.GetOrCreate(17);
    const std::vector<Key> keys = {42, 7, 17, 42, 1000, 7, 3};
    std::vector<GEntry *> out(keys.size(), nullptr);
    batched.GetOrCreateBatch(keys, out.data());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        ASSERT_NE(out[i], nullptr) << i;
        EXPECT_EQ(out[i]->key(), keys[i]) << i;
        // Duplicates resolve to the same entry, and a later single-call
        // lookup agrees with the batch result.
        EXPECT_EQ(out[i], &batched.GetOrCreate(keys[i])) << i;
        singles.GetOrCreate(keys[i]);
    }
    EXPECT_EQ(out[0], out[3]);
    EXPECT_EQ(out[1], out[5]);
    EXPECT_EQ(batched.size(), singles.size());
}

TEST(GEntryRegistryTest, GetOrCreateBatchEmptyAndLarge)
{
    GEntryRegistry registry(8);
    registry.GetOrCreateBatch(std::span<const Key>{}, nullptr);
    EXPECT_EQ(registry.size(), 0u);

    // Enough keys to span every shard and force arena block growth.
    std::vector<Key> keys;
    for (Key k = 0; k < 600; ++k)
        keys.push_back(k * 31 + 5);
    std::vector<GEntry *> out(keys.size(), nullptr);
    registry.GetOrCreateBatch(keys, out.data());
    EXPECT_EQ(registry.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(out[i], registry.Find(keys[i])) << i;
}

}  // namespace
}  // namespace frugal
