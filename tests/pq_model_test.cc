/**
 * Randomized reference-model test of the FlushQueue implementations:
 * a naive, obviously-correct model (per-key state + linear scans) is
 * driven through the same operation sequence as the real queues; after
 * every operation the observable state (gate predicate, claimable set,
 * flush results) must agree. Single-threaded, so failures pinpoint
 * logic bugs rather than races (pq_concurrent_test covers races).
 */
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "pq/g_entry_registry.h"
#include "pq/pq_ops.h"
#include "pq/tree_heap_pq.h"
#include "pq/two_level_pq.h"

namespace frugal {
namespace {

/** The reference: what each key's g-entry should look like. */
struct ModelEntry
{
    std::multiset<Step> reads;
    std::vector<WriteRecord> writes;

    Priority
    priority() const
    {
        if (writes.empty() || reads.empty())
            return kInfiniteStep;
        return *reads.begin();
    }
};

class PqModelTest : public ::testing::TestWithParam<const char *>
{
  protected:
    std::unique_ptr<FlushQueue>
    MakeQueue(Step max_step)
    {
        if (std::string(GetParam()) == "two-level") {
            TwoLevelPQConfig config;
            config.max_step = max_step;
            config.segment_slots = 4;
            return std::make_unique<TwoLevelPQ>(config);
        }
        return std::make_unique<TreeHeapPQ>();
    }
};

TEST_P(PqModelTest, RandomOpSequencesMatchReference)
{
    constexpr Step kMaxStep = 200;
    constexpr int kKeys = 24;
    constexpr int kOpsPerTrial = 600;

    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        auto queue = MakeQueue(kMaxStep);
        GEntryRegistry registry(8);
        std::map<Key, ModelEntry> model;
        Rng rng(seed);
        // Reads must be registered in non-decreasing step order per key;
        // track a per-key floor.
        std::map<Key, Step> read_floor;
        Step global_clock = 0;

        auto model_min_priority = [&] {
            Priority min = kInfiniteStep;
            for (auto &[k, e] : model)
                min = std::min(min, e.priority());
            return min;
        };

        for (int op = 0; op < kOpsPerTrial; ++op) {
            const Key key = rng.NextBounded(kKeys);
            switch (rng.NextBounded(3)) {
              case 0: {  // RegisterRead
                const Step floor =
                    std::max(read_floor[key], global_clock);
                const Step step = floor + rng.NextBounded(20);
                if (step > kMaxStep)
                    break;
                read_floor[key] = step;
                RegisterRead(*queue, registry.GetOrCreate(key), step);
                if (model[key].reads.empty() ||
                    *model[key].reads.rbegin() != step) {
                    model[key].reads.insert(step);
                }
                break;
              }
              case 1: {  // RegisterUpdate at the earliest pending read
                ModelEntry &entry = model[key];
                const Step step = entry.reads.empty()
                                      ? global_clock
                                      : *entry.reads.begin();
                RegisterUpdate(*queue, registry.GetOrCreate(key),
                               {step, 0, {}});
                auto it = entry.reads.find(step);
                if (it != entry.reads.end())
                    entry.reads.erase(it);
                entry.writes.push_back({step, 0, {}});
                break;
              }
              case 2: {  // Claim + flush a batch
                std::vector<ClaimTicket> claimed;
                const std::size_t want = 1 + rng.NextBounded(4);
                queue->DequeueClaim(claimed, want);
                for (const ClaimTicket &ticket : claimed) {
                    // The claim must be the current global minimum
                    // priority per the reference model.
                    ASSERT_EQ(ticket.priority, model_min_priority());
                    ModelEntry &entry = model[ticket.entry->key()];
                    ASSERT_EQ(ticket.priority, entry.priority());
                    const std::size_t flushed = FlushClaimed(
                        *queue, ticket,
                        [](Key, const WriteRecord &) {});
                    ASSERT_EQ(flushed, entry.writes.size());
                    entry.writes.clear();
                }
                break;
              }
            }
            // Gate predicate must agree at a few probe points.
            for (Step probe : {global_clock, global_clock + 5,
                               kMaxStep}) {
                ASSERT_EQ(queue->HasPendingAtOrBelow(probe),
                          model_min_priority() <= probe)
                    << "probe " << probe << " op " << op << " seed "
                    << seed;
            }
            if (rng.NextBounded(10) == 0 && global_clock < kMaxStep - 25)
                ++global_clock;  // advance training time occasionally
        }

        // Drain everything; total flushed must equal total outstanding.
        std::size_t model_outstanding = 0;
        for (auto &[k, e] : model)
            model_outstanding += e.writes.size();
        std::size_t drained = 0;
        for (;;) {
            std::vector<ClaimTicket> claimed;
            if (queue->DequeueClaim(claimed, 8) == 0)
                break;
            for (const ClaimTicket &ticket : claimed)
                drained += FlushClaimed(*queue, ticket,
                                        [](Key, const WriteRecord &) {});
        }
        EXPECT_EQ(drained, model_outstanding) << "seed " << seed;
        EXPECT_FALSE(queue->HasPendingAtOrBelow(kMaxStep));
        EXPECT_EQ(queue->SizeApprox(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(BothQueues, PqModelTest,
                         ::testing::Values("two-level", "tree-heap"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

}  // namespace
}  // namespace frugal
