/**
 * Sanitizer-oriented stress tests for the lock-free building blocks.
 *
 * These tests exist to give ThreadSanitizer (and ASan/UBSan) dense,
 * adversarial interleavings to chew on — many threads, small data,
 * maximal overlap — while still asserting real properties in release
 * builds:
 *   - AtomicSlotSet delivers every inserted element to exactly one
 *     popper, and its per-segment accounting (popped ≤ published ≤
 *     capacity) holds at every instant, including mid-publish;
 *   - TwoLevelPQ survives a RegisterRead/RegisterUpdate/flush race on a
 *     small hot key set (maximising AdjustPriority lazy-deletion
 *     traffic) with exact conservation and a clean invariant audit;
 *   - StripedLocks serialise writers under contention, including the
 *     try_lock path;
 *   - the lock-rank machinery tracks acquisition order (DCHECK builds).
 *
 * Build with `cmake --preset tsan && ctest --preset tsan` to run them
 * under TSan; sizes scale down automatically (FRUGAL_TSAN_ENABLED) so
 * the suite stays fast on small machines.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/spinlock.h"
#include "frugal/annotations.h"
#include "pq/atomic_slot_set.h"
#include "pq/g_entry_registry.h"
#include "pq/pq_ops.h"
#include "pq/two_level_pq.h"

namespace frugal {
namespace {

#if FRUGAL_TSAN_ENABLED
constexpr int kScale = 1;  // TSan costs ~10x; keep wall time in budget
#else
constexpr int kScale = 4;
#endif

/** Deterministic per-thread mixer (tests must not use global rand()). */
std::uint64_t
Mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

// ---------------------------------------------------------------------
// AtomicSlotSet: exactly-once delivery under producer/consumer races.
// ---------------------------------------------------------------------

struct StressItem
{
    std::atomic<int> pops{0};
};

TEST(PqSanitizerStressTest, SlotSetDeliversEachItemExactlyOnce)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    const int per_producer = 1500 * kScale;
    const std::size_t total =
        static_cast<std::size_t>(kProducers) * per_producer;

    // Tiny segments force constant chain growth and scan-head advance.
    AtomicSlotSet<StressItem> set(/*segment_slots=*/8);
    std::vector<StressItem> arena(total);

    std::atomic<std::size_t> popped_total{0};
    std::atomic<bool> audit_stop{false};
    std::atomic<std::uint64_t> audit_failures{0};

    // A concurrent auditor: the accounting invariant must hold at every
    // instant, not just at quiescence.
    std::thread auditor([&] {
        while (!audit_stop.load(std::memory_order_acquire)) {
            const auto snap = set.AuditAccounting();
            // relaxed: monotonic failure counter, read after joins.
            if (!snap.per_segment_consistent)
                audit_failures.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::yield();
        }
    });

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            const std::size_t base =
                static_cast<std::size_t>(p) * per_producer;
            for (int i = 0; i < per_producer; ++i)
                set.Insert(&arena[base + static_cast<std::size_t>(i)]);
        });
    }
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            while (popped_total.load(std::memory_order_acquire) < total) {
                StressItem *item = set.PopAny();
                if (item == nullptr) {
                    std::this_thread::yield();
                    continue;
                }
                // relaxed: per-item counter, verified after joins.
                item->pops.fetch_add(1, std::memory_order_relaxed);
                popped_total.fetch_add(1, std::memory_order_release);
            }
        });
    }
    for (auto &t : producers)
        t.join();
    for (auto &t : consumers)
        t.join();
    audit_stop.store(true, std::memory_order_release);
    auditor.join();

    EXPECT_EQ(audit_failures.load(), 0u);
    EXPECT_EQ(popped_total.load(), total);
    for (const StressItem &item : arena)
        EXPECT_EQ(item.pops.load(), 1);

    // Exact accounting at quiescence.
    const auto snap = set.AuditAccounting();
    EXPECT_TRUE(snap.per_segment_consistent);
    EXPECT_EQ(snap.announced, total);
    EXPECT_EQ(snap.popped, total);
    EXPECT_EQ(set.size(), 0u);
    EXPECT_EQ(snap.announced - snap.popped, set.size());
}

// ---------------------------------------------------------------------
// TwoLevelPQ: AdjustPriority hammer on a hot key set.
// ---------------------------------------------------------------------

TEST(PqSanitizerStressTest, TwoLevelPqSurvivesAdjustPriorityRaces)
{
    // Few keys × many steps maximises priority transitions per entry:
    // every RegisterRead/RegisterUpdate on an enqueued entry goes
    // through OnPriorityChange's insert-new-then-lazy-delete-old path.
    const int kKeys = 16;
    const Step kSteps = 150 * kScale;
    constexpr int kFlushers = 3;

    TwoLevelPQConfig config;
    config.max_step = kSteps;
    config.segment_slots = 8;
    TwoLevelPQ queue(config);
    GEntryRegistry registry(8);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> flushed_records{0};
    std::atomic<std::uint64_t> emitted_records{0};
    std::atomic<std::uint64_t> midrun_violations{0};

    auto drain_once = [&](std::vector<ClaimTicket> &claimed) {
        claimed.clear();
        if (queue.DequeueClaim(claimed, 8) == 0)
            return false;
        auto noop_apply = [](Key, const WriteRecord &) {};
        for (const ClaimTicket &ticket : claimed) {
            // relaxed: monotonic stat counter, read after joins.
            flushed_records.fetch_add(
                FlushClaimed(queue, ticket, noop_apply),
                std::memory_order_relaxed);
        }
        return true;
    };

    std::vector<std::thread> flushers;
    for (int f = 0; f < kFlushers; ++f) {
        flushers.emplace_back([&] {
            std::vector<ClaimTicket> claimed;
            while (!stop.load(std::memory_order_acquire)) {
                if (!drain_once(claimed))
                    std::this_thread::yield();
            }
            while (drain_once(claimed)) {
            }
        });
    }

    // Mid-run auditor: counts must never go negative and slot-set
    // accounting must stay consistent while everything races.
    std::thread auditor([&] {
        while (!stop.load(std::memory_order_acquire)) {
            // relaxed: monotonic failure counter, read after joins.
            midrun_violations.fetch_add(
                queue.AuditInvariants(/*quiescent=*/false),
                std::memory_order_relaxed);
            std::this_thread::yield();
        }
    });

    // Foreground: interleave prefetch (reads) and training (updates)
    // with a lookahead window, so entries oscillate between finite
    // priorities and ∞ while flushers race them.
    const Step lookahead = 6;
    std::uint64_t seed = 42;
    Step prefetched = 0;
    auto prefetch_to = [&](Step horizon) {
        for (; prefetched < std::min(horizon, kSteps); ++prefetched) {
            for (int k = 0; k < kKeys; ++k) {
                seed = Mix(seed);
                if (seed % 3 == 0)  // sparse reads keep R sets varied
                    continue;
                RegisterRead(queue, registry.GetOrCreate(k), prefetched);
            }
        }
    };
    prefetch_to(lookahead);
    for (Step s = 0; s < kSteps; ++s) {
        for (int k = 0; k < kKeys; ++k) {
            seed = Mix(seed);
            if (seed % 2 == 0)
                continue;
            RegisterUpdate(queue, registry.GetOrCreate(k),
                           {s, 0, {static_cast<float>(s)}});
            // relaxed: single-writer counter (this thread only).
            emitted_records.fetch_add(1, std::memory_order_relaxed);
        }
        prefetch_to(s + 1 + lookahead);
    }

    stop.store(true, std::memory_order_release);
    for (auto &t : flushers)
        t.join();
    auditor.join();

    // Main-thread final drain: stale copies may still need discarding.
    std::vector<ClaimTicket> claimed;
    while (drain_once(claimed)) {
    }

    EXPECT_EQ(midrun_violations.load(), 0u);
    EXPECT_EQ(flushed_records.load(), emitted_records.load());
    EXPECT_EQ(queue.SizeApprox(), 0u);
    EXPECT_EQ(queue.AuditInvariants(/*quiescent=*/true), 0u);
    registry.ForEach([](GEntry &entry) {
        SpinGuard guard(entry.lock());
        EXPECT_FALSE(entry.hasWritesLocked());
        EXPECT_FALSE(entry.enqueuedLocked());
    });
}

// ---------------------------------------------------------------------
// StripedLocks: contended mutual exclusion, lock() and try_lock().
// ---------------------------------------------------------------------

TEST(PqSanitizerStressTest, StripedLocksSerialiseContendedWriters)
{
    constexpr int kThreads = 4;
    constexpr std::size_t kSlots = 32;
    const int per_thread = 4000 * kScale;

    StripedLocks locks(8, LockRank::kTableRow);
    // Plain (non-atomic) counters: only the stripe lock makes this
    // correct, which is exactly what TSan should verify.
    std::vector<std::uint64_t> counters(kSlots, 0);
    std::atomic<std::uint64_t> try_lock_hits{0};

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            std::uint64_t seed = 1000u + static_cast<std::uint64_t>(t);
            for (int i = 0; i < per_thread; ++i) {
                seed = Mix(seed);
                const std::size_t slot = seed % kSlots;
                if (seed % 5 == 0) {
                    // try_lock path. Branch-shaped (not a retry loop):
                    // thread-safety analysis can only track the
                    // capability through an `if` on the try_lock
                    // result, and a lost race falling back to the
                    // blocking path keeps the expected total exact
                    // while still exercising both try_lock outcomes.
                    Spinlock &lock = locks.For(slot);
                    if (lock.try_lock()) {
                        ++counters[slot];
                        // relaxed: monotonic stat counter, read after
                        // joins.
                        try_lock_hits.fetch_add(1,
                                                std::memory_order_relaxed);
                        lock.unlock();
                    } else {
                        SpinGuard guard(lock);
                        ++counters[slot];
                    }
                } else {
                    SpinGuard guard(locks.For(slot));
                    ++counters[slot];
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();

    std::uint64_t sum = 0;
    for (std::uint64_t c : counters)
        sum += c;
    EXPECT_EQ(sum, static_cast<std::uint64_t>(kThreads) * per_thread);
    EXPECT_GT(try_lock_hits.load(), 0u);
}

// ---------------------------------------------------------------------
// Lock-rank machinery (compiled in DCHECK builds only).
// ---------------------------------------------------------------------

#if FRUGAL_DCHECK_ENABLED
TEST(PqSanitizerStressTest, LockRankTracksAcquisitionOrder)
{
    EXPECT_EQ(lock_rank_internal::HeldCount(), 0u);

    Spinlock entry_lock(LockRank::kGEntry);
    Spinlock heap_lock(LockRank::kFlushQueue);
    {
        SpinGuard entry_guard(entry_lock);
        EXPECT_EQ(lock_rank_internal::HeldCount(), 1u);
        // Going up the order is fine...
        EXPECT_FALSE(
            lock_rank_internal::WouldViolate(LockRank::kFlushQueue));
        // ...going down or sideways is a violation.
        EXPECT_TRUE(
            lock_rank_internal::WouldViolate(LockRank::kRegistryShard));
        EXPECT_TRUE(lock_rank_internal::WouldViolate(LockRank::kGEntry));
        {
            SpinGuard heap_guard(heap_lock);
            EXPECT_EQ(lock_rank_internal::HeldCount(), 2u);
        }
        EXPECT_EQ(lock_rank_internal::HeldCount(), 1u);
    }
    EXPECT_EQ(lock_rank_internal::HeldCount(), 0u);

    // Unranked locks opt out of checking entirely.
    Spinlock unranked;
    SpinGuard guard(unranked);
    EXPECT_EQ(lock_rank_internal::HeldCount(), 0u);
    EXPECT_FALSE(lock_rank_internal::WouldViolate(LockRank::kGEntry));
}
#endif  // FRUGAL_DCHECK_ENABLED

}  // namespace
}  // namespace frugal
