/**
 * Sharded-dequeue tests for TwoLevelPQ: per-flush-thread sub-buckets
 * must keep every FlushQueue guarantee intact — exactly-once flushing,
 * priority-sorted claim batches, clean internal accounting — with scan
 * compression on and off, while dequeuers with distinct shard hints
 * drain disjoint slot sets (and steal across shards for liveness when
 * the populations are skewed).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/distribution.h"
#include "common/rng.h"
#include "pq/g_entry_registry.h"
#include "pq/invariant_auditor.h"
#include "pq/pq_ops.h"
#include "pq/two_level_pq.h"

namespace frugal {
namespace {

// --- unit-level shard semantics ---------------------------------------

TEST(PqShardedTest, SingleDequeuerDrainsAllShardsViaStealing)
{
    TwoLevelPQConfig config;
    config.max_step = 10;
    config.n_shards = 8;
    TwoLevelPQ q(config);
    GEntryRegistry registry(4);

    constexpr int kKeys = 64;  // spread across all 8 shards w.h.p.
    for (Key k = 0; k < kKeys; ++k)
        RegisterUpdate(q, registry.GetOrCreate(k), {0, 0, {}});
    for (Key k = 0; k < kKeys; ++k)
        RegisterRead(q, registry.GetOrCreate(k), 3);

    // One dequeuer, one hint: stealing must surface every entry — a
    // shard is never reachable only by the flusher whose index matches.
    std::vector<ClaimTicket> out;
    EXPECT_EQ(q.DequeueClaim(out, kKeys + 8, /*shard_hint=*/5), kKeys);
    for (const ClaimTicket &ticket : out) {
        EXPECT_EQ(ticket.priority, 3u);
        q.OnFlushed(ticket);
    }
    EXPECT_EQ(q.SizeApprox(), 0u);
    EXPECT_EQ(q.AuditInvariants(/*quiescent=*/false), 0u);
}

TEST(PqShardedTest, HintedDequeuerDrainsOwnShardFirst)
{
    TwoLevelPQConfig config;
    config.max_step = 4;
    config.n_shards = 4;
    TwoLevelPQ q(config);
    GEntryRegistry registry(4);

    // Bin keys by the queue's own homing function.
    std::vector<std::vector<Key>> by_shard(4);
    for (Key k = 0; by_shard[0].size() < 4 || by_shard[1].size() < 4 ||
                    by_shard[2].size() < 4 || by_shard[3].size() < 4;
         ++k)
        by_shard[MixHash64(k) % 4].push_back(k);

    for (std::size_t shard = 0; shard < 4; ++shard) {
        for (std::size_t i = 0; i < 4; ++i) {
            const Key k = by_shard[shard][i];
            RegisterUpdate(q, registry.GetOrCreate(k), {0, 0, {}});
            RegisterRead(q, registry.GetOrCreate(k), 2);
        }
    }

    // A budget that fits inside one shard must be served entirely from
    // the hinted shard — disjoint from what a peer with another hint
    // scans.
    for (std::size_t hint = 0; hint < 4; ++hint) {
        std::vector<ClaimTicket> out;
        ASSERT_EQ(q.DequeueClaim(out, 4, hint), 4u);
        for (const ClaimTicket &ticket : out) {
            EXPECT_EQ(MixHash64(ticket.entry->key()) % 4, hint);
            FlushClaimed(q, ticket, [](Key, const WriteRecord &) {});
        }
    }
    EXPECT_EQ(q.SizeApprox(), 0u);
    EXPECT_EQ(q.AuditInvariants(/*quiescent=*/true), 0u);
}

// --- DequeueClaimBelow edge cases --------------------------------------

TEST(PqShardedTest, DequeueClaimBelowSkipsEmptyCeilingBucket)
{
    TwoLevelPQConfig config;
    config.max_step = 6;
    config.n_shards = 2;
    TwoLevelPQ q(config);
    GEntryRegistry registry(4);

    // Priority 1 and 3 populated, 2 empty; one deferred (∞) entry.
    RegisterUpdate(q, registry.GetOrCreate(0), {0, 0, {}});
    RegisterRead(q, registry.GetOrCreate(0), 1);
    RegisterUpdate(q, registry.GetOrCreate(1), {0, 0, {}});
    RegisterRead(q, registry.GetOrCreate(1), 3);
    RegisterUpdate(q, registry.GetOrCreate(2), {0, 0, {}});

    // Ceiling bucket (2) is empty: the claim must still surface the
    // lower-priority entry and must not touch priority 3 or ∞.
    std::vector<ClaimTicket> out;
    EXPECT_EQ(q.DequeueClaimBelow(out, 8, /*shard_hint=*/0,
                                  /*ceiling=*/2),
              1u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].entry->key(), 0u);
    EXPECT_EQ(out[0].priority, 1u);
    FlushClaimed(q, out[0], [](Key, const WriteRecord &) {});

    // Nothing at or below the (now empty) ceiling: an exact no-op.
    out.clear();
    EXPECT_EQ(q.DequeueClaimBelow(out, 8, 0, /*ceiling=*/2), 0u);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(q.SizeApprox(), 2u);

    // The ceiling is inclusive and never reaches the deferred bucket.
    out.clear();
    EXPECT_EQ(q.DequeueClaimBelow(out, 8, 0, /*ceiling=*/3), 1u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].priority, 3u);
    FlushClaimed(q, out[0], [](Key, const WriteRecord &) {});

    out.clear();
    EXPECT_EQ(q.DequeueClaim(out, 8, 0), 1u);  // the ∞ entry
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].priority, kInfiniteStep);
    FlushClaimed(q, out[0], [](Key, const WriteRecord &) {});

    EXPECT_EQ(q.SizeApprox(), 0u);
    EXPECT_EQ(q.AuditInvariants(/*quiescent=*/true), 0u);
}

TEST(PqShardedTest, DequeueClaimBelowCeilingEqualsLastDequeuedPriority)
{
    TwoLevelPQConfig config;
    config.max_step = 4;
    config.n_shards = 2;
    TwoLevelPQ q(config);
    GEntryRegistry registry(4);

    for (Key k = 0; k < 3; ++k) {
        RegisterUpdate(q, registry.GetOrCreate(k), {0, 0, {}});
        RegisterRead(q, registry.GetOrCreate(k), 2);
    }

    // A budget-limited claim leaves peers at the dequeued priority; a
    // follow-up claim whose ceiling EQUALS that last-dequeued priority
    // must still surface them (the in-pass lower-bound hint may only
    // exclude strictly lower buckets — an off-by-one here starves the
    // cooperative flush path).
    std::vector<ClaimTicket> first;
    ASSERT_EQ(q.DequeueClaimBelow(first, 1, 0, /*ceiling=*/2), 1u);
    EXPECT_EQ(first[0].priority, 2u);

    std::vector<ClaimTicket> second;
    EXPECT_EQ(q.DequeueClaimBelow(second, 4, 0, /*ceiling=*/2), 2u);
    for (const ClaimTicket &ticket : second)
        EXPECT_EQ(ticket.priority, 2u);

    for (const ClaimTicket &ticket : first)
        FlushClaimed(q, ticket, [](Key, const WriteRecord &) {});
    for (const ClaimTicket &ticket : second)
        FlushClaimed(q, ticket, [](Key, const WriteRecord &) {});
    EXPECT_EQ(q.SizeApprox(), 0u);
    EXPECT_EQ(q.AuditInvariants(/*quiescent=*/true), 0u);
}

TEST(PqShardedTest, StealRacesCooperativeClaimExactlyOnce)
{
    TwoLevelPQConfig config;
    config.max_step = 6;
    config.n_shards = 2;
    TwoLevelPQ q(config);
    GEntryRegistry registry(8);

    // Low half gate-blocking (priority 2), high half later (priority 5):
    // the cooperative claimer wants exactly the low half while a general
    // flusher with the other shard hint drains everything — every entry
    // it takes from the cooperative claimer's home shard is a steal.
    constexpr int kKeys = 96;
    std::vector<std::atomic<int>> claims(kKeys);
    for (Key k = 0; k < kKeys; ++k) {
        RegisterUpdate(q, registry.GetOrCreate(k), {0, 0, {}});
        RegisterRead(q, registry.GetOrCreate(k), k < kKeys / 2 ? 2 : 5);
    }

    auto noop = [](Key, const WriteRecord &) {};
    std::thread cooperative([&] {
        std::vector<ClaimTicket> out;
        for (int dry = 0; dry < 3;) {
            out.clear();
            if (q.DequeueClaimBelow(out, 4, /*shard_hint=*/0,
                                    /*ceiling=*/2) == 0) {
                ++dry;
                std::this_thread::yield();
                continue;
            }
            for (const ClaimTicket &ticket : out) {
                EXPECT_LE(ticket.priority, 2u);
                // relaxed: tally only, read after both joins.
                claims[ticket.entry->key()].fetch_add(
                    1, std::memory_order_relaxed);
                FlushClaimed(q, ticket, noop);
            }
        }
    });
    std::thread stealer([&] {
        std::vector<ClaimTicket> out;
        for (int dry = 0; dry < 3;) {
            out.clear();
            if (q.DequeueClaim(out, 4, /*shard_hint=*/1) == 0) {
                ++dry;
                std::this_thread::yield();
                continue;
            }
            for (const ClaimTicket &ticket : out) {
                // relaxed: tally only, read after both joins.
                claims[ticket.entry->key()].fetch_add(
                    1, std::memory_order_relaxed);
                FlushClaimed(q, ticket, noop);
            }
        }
    });
    cooperative.join();
    stealer.join();

    // Nothing re-enqueues in this test, so however claims interleaved —
    // cooperative fast path, hinted fast path, or a steal — each entry
    // was claimed exactly once, and both dequeuers went dry only after
    // the queue was truly empty.
    // relaxed: counters read after both joins.
    for (Key k = 0; k < kKeys; ++k)
        EXPECT_EQ(claims[k].load(std::memory_order_relaxed), 1)
            << "key " << k;
    EXPECT_EQ(q.SizeApprox(), 0u);
    EXPECT_EQ(q.AuditInvariants(/*quiescent=*/true), 0u);
}

// --- concurrent stress -------------------------------------------------

struct ShardCase
{
    std::size_t n_shards;
    int flushers;
    int keys;
    int steps;
    int batch;
    bool compression;
    double zipf_theta;
};

class PqShardedStressTest : public ::testing::TestWithParam<ShardCase>
{
};

TEST_P(PqShardedStressTest, ExactlyOnceFlushAndCleanAudit)
{
    const ShardCase param = GetParam();
    const Step lookahead = 4;

    TwoLevelPQConfig config;
    config.max_step = param.steps;
    config.segment_slots = 8;
    config.n_shards = param.n_shards;
    TwoLevelPQ queue(config);
    queue.setScanCompression(param.compression);
    GEntryRegistry registry(16);
    InvariantAuditor::Options auditor_options;
    auditor_options.expect_sorted_batches = true;
    InvariantAuditor auditor(auditor_options);

    // Pre-generate the trace (deduped keys per step).
    Rng rng(99);
    std::unique_ptr<KeyDistribution> dist =
        param.zipf_theta > 0
            ? MakeDistribution(DistributionKind::kZipf, param.keys,
                               param.zipf_theta)
            : MakeDistribution(DistributionKind::kUniform, param.keys);
    std::vector<std::vector<Key>> trace(param.steps);
    for (int s = 0; s < param.steps; ++s) {
        std::vector<bool> seen(param.keys, false);
        for (int i = 0; i < param.batch; ++i) {
            const Key k = dist->Sample(rng);
            if (!seen[k]) {
                seen[k] = true;
                trace[s].push_back(k);
            }
        }
    }

    std::atomic<bool> stop{false};
    std::atomic<Step> current_step{0};
    std::atomic<Step> frontier{0};
    std::atomic<std::uint64_t> flushed_records{0};
    std::atomic<std::uint64_t> gate_violations{0};

    std::vector<std::thread> flushers;
    for (int f = 0; f < param.flushers; ++f) {
        flushers.emplace_back([&, hint = static_cast<std::size_t>(f)] {
            auto noop_apply = [](Key, const WriteRecord &) {};
            std::vector<ClaimTicket> claimed;
            auto drain_once = [&]() -> bool {
                const Step floor =
                    current_step.load(std::memory_order_acquire);
                queue.SetScanBounds(
                    floor, frontier.load(std::memory_order_acquire));
                claimed.clear();
                if (queue.DequeueClaim(claimed, 8, hint) == 0)
                    return false;
                auditor.OnClaimBatch(claimed, floor);
                for (const ClaimTicket &ticket : claimed)
                    flushed_records +=
                        FlushClaimed(queue, ticket, noop_apply);
                return true;
            };
            while (!stop.load(std::memory_order_acquire)) {
                if (!drain_once())
                    std::this_thread::yield();
            }
            while (drain_once()) {
            }
        });
    }

    std::uint64_t emitted_records = 0;
    Step prefetched_through = 0;  // exclusive frontier

    auto prefetch_to = [&](Step horizon) {
        while (prefetched_through < horizon &&
               prefetched_through < static_cast<Step>(param.steps)) {
            for (Key k : trace[prefetched_through])
                RegisterRead(queue, registry.GetOrCreate(k),
                             prefetched_through);
            ++prefetched_through;
            frontier.store(prefetched_through,
                           std::memory_order_release);
        }
    };

    prefetch_to(lookahead);
    for (Step s = 0; s < static_cast<Step>(param.steps); ++s) {
        current_step.store(s, std::memory_order_release);
        while (queue.HasPendingAtOrBelow(s))
            std::this_thread::yield();
        for (Key k : trace[s]) {
            GEntry &entry = registry.GetOrCreate(k);
            SpinGuard guard(entry.lock());
            if (entry.hasWritesLocked())
                ++gate_violations;
        }
        for (Key k : trace[s]) {
            RegisterUpdate(queue, registry.GetOrCreate(k),
                           {s, 0, {static_cast<float>(s)}});
            ++emitted_records;
        }
        // Mid-run accounting audit (non-quiescent checks only).
        if (s % 64 == 0) {
            EXPECT_EQ(queue.AuditInvariants(/*quiescent=*/false), 0u);
        }
        prefetch_to(s + 1 + lookahead);
    }

    stop.store(true, std::memory_order_release);
    for (auto &t : flushers)
        t.join();

    EXPECT_EQ(gate_violations.load(), 0u);
    EXPECT_EQ(flushed_records.load(), emitted_records);
    EXPECT_EQ(queue.SizeApprox(), 0u);
    EXPECT_EQ(queue.AuditInvariants(/*quiescent=*/true), 0u);
    auditor.OnQuiescent(queue, registry);
    EXPECT_EQ(auditor.violations(), 0u);
    auditor.ExpectClean();
    registry.ForEach([&](GEntry &entry) {
        SpinGuard guard(entry.lock());
        EXPECT_FALSE(entry.hasWritesLocked());
        EXPECT_FALSE(entry.enqueuedLocked());
    });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PqShardedStressTest,
    ::testing::Values(
        // shards == flushers (the engine's default pairing)
        ShardCase{2, 2, 64, 200, 16, true, 0.0},
        ShardCase{4, 4, 256, 300, 32, true, 0.9},
        ShardCase{8, 8, 512, 200, 64, true, 0.99},
        // compression off: full-range scans over sharded buckets
        ShardCase{4, 4, 256, 200, 32, false, 0.9},
        ShardCase{8, 4, 128, 150, 32, false, 0.99},
        // mismatched counts: stealing keeps orphan shards live
        ShardCase{8, 2, 256, 200, 32, true, 0.9},
        ShardCase{3, 5, 128, 200, 32, true, 0.0},
        ShardCase{1, 4, 64, 200, 16, true, 0.9}),
    [](const ::testing::TestParamInfo<ShardCase> &info) {
        const ShardCase &p = info.param;
        return "sh" + std::to_string(p.n_shards) + "_f" +
               std::to_string(p.flushers) + "_k" +
               std::to_string(p.keys) + "_s" + std::to_string(p.steps) +
               (p.compression ? "_comp" : "_nocomp") +
               (p.zipf_theta > 0 ? "_zipf" : "_unif");
    });

}  // namespace
}  // namespace frugal
