/** Tests for the TreeHeap baseline queue (Exp #4 comparator). */
#include "pq/tree_heap_pq.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "pq/pq_ops.h"

namespace frugal {
namespace {

void
MakePending(FlushQueue &q, GEntry &e, Step read, Step wrote)
{
    RegisterRead(q, e, read);
    RegisterUpdate(q, e, {wrote, 0, {}});
}

TEST(TreeHeapPQTest, EmptyQueue)
{
    TreeHeapPQ q;
    EXPECT_EQ(q.SizeApprox(), 0u);
    EXPECT_FALSE(q.HasPendingAtOrBelow(1000));
    std::vector<ClaimTicket> out;
    EXPECT_EQ(q.DequeueClaim(out, 4), 0u);
}

TEST(TreeHeapPQTest, DequeueInPriorityOrder)
{
    TreeHeapPQ q;
    GEntry e1(1), e2(2), e3(3), e4(4);
    MakePending(q, e2, 20, 0);
    MakePending(q, e1, 5, 0);
    MakePending(q, e4, 700, 0);
    MakePending(q, e3, 50, 0);

    std::vector<ClaimTicket> out;
    EXPECT_EQ(q.DequeueClaim(out, 10), 4u);
    EXPECT_EQ(out[0].entry, &e1);
    EXPECT_EQ(out[1].entry, &e2);
    EXPECT_EQ(out[2].entry, &e3);
    EXPECT_EQ(out[3].entry, &e4);
}

TEST(TreeHeapPQTest, GatePredicate)
{
    TreeHeapPQ q;
    GEntry e(1);
    MakePending(q, e, 7, 0);
    EXPECT_TRUE(q.HasPendingAtOrBelow(7));
    EXPECT_FALSE(q.HasPendingAtOrBelow(6));
    std::vector<ClaimTicket> out;
    ASSERT_EQ(q.DequeueClaim(out, 1), 1u);
    EXPECT_TRUE(q.HasPendingAtOrBelow(7));  // claimed, still in flight
    FlushClaimed(q, out[0], [](Key, const WriteRecord &) {});
    EXPECT_FALSE(q.HasPendingAtOrBelow(7));
}

TEST(TreeHeapPQTest, LazyInvalidationDiscardsStalePairs)
{
    TreeHeapPQ q;
    GEntry e(1);
    RegisterRead(q, e, 4);
    RegisterRead(q, e, 9);
    RegisterUpdate(q, e, {0, 0, {}});  // pair (4, e)
    RegisterUpdate(q, e, {4, 0, {}});  // pair (9, e); (4, e) now stale

    std::vector<ClaimTicket> out;
    EXPECT_EQ(q.DequeueClaim(out, 10), 1u);
    EXPECT_EQ(out[0].entry, &e);
    EXPECT_EQ(q.staleDiscards(), 1u);
}

TEST(TreeHeapPQTest, InfinityPriorityFlushesEventually)
{
    TreeHeapPQ q;
    GEntry deferred(1), urgent(2);
    RegisterUpdate(q, deferred, {0, 0, {}});  // R empty ⇒ ∞
    MakePending(q, urgent, 3, 0);
    std::vector<ClaimTicket> out;
    EXPECT_EQ(q.DequeueClaim(out, 10), 2u);
    EXPECT_EQ(out[0].entry, &urgent);
    EXPECT_EQ(out[1].entry, &deferred);
}

TEST(TreeHeapPQTest, ManyEntriesHeapOrder)
{
    TreeHeapPQ q;
    std::vector<std::unique_ptr<GEntry>> entries;
    Rng rng(31);
    for (int i = 0; i < 500; ++i) {
        entries.push_back(std::make_unique<GEntry>(i));
        MakePending(q, *entries.back(), 1 + rng.NextBounded(10000), 0);
    }
    std::vector<ClaimTicket> out;
    EXPECT_EQ(q.DequeueClaim(out, 500), 500u);
    // Verify non-decreasing next-read order of claimed entries.
    Step prev = 0;
    for (const ClaimTicket &ticket : out) {
        SpinGuard guard(ticket.entry->lock());
        const Step next_read = ticket.entry->nextReadLocked();
        EXPECT_GE(next_read, prev);
        prev = next_read;
    }
}

TEST(TreeHeapPQTest, ReEnqueueAfterFlush)
{
    TreeHeapPQ q;
    GEntry e(1);
    MakePending(q, e, 3, 0);
    std::vector<ClaimTicket> out;
    ASSERT_EQ(q.DequeueClaim(out, 1), 1u);
    EXPECT_EQ(FlushClaimed(q, out[0], [](Key, const WriteRecord &) {}),
              1u);
    RegisterRead(q, e, 8);
    RegisterUpdate(q, e, {3, 0, {}});
    EXPECT_TRUE(q.HasPendingAtOrBelow(8));
    out.clear();
    EXPECT_EQ(q.DequeueClaim(out, 1), 1u);
    EXPECT_EQ(out[0].entry, &e);
}

}  // namespace
}  // namespace frugal
