/** Tests for the two-level priority queue (§3.4). */
#include "pq/two_level_pq.h"

#include <gtest/gtest.h>

#include <vector>

#include "pq/pq_ops.h"

namespace frugal {
namespace {

TwoLevelPQConfig
Config(Step max_step)
{
    TwoLevelPQConfig config;
    config.max_step = max_step;
    config.segment_slots = 4;  // exercise segment growth
    return config;
}

/** Enqueue an entry with one pending write whose next read is `read`. */
void
MakePending(FlushQueue &q, GEntry &e, Step read, Step wrote)
{
    RegisterRead(q, e, read);
    RegisterUpdate(q, e, {wrote, 0, {}});
}

TEST(TwoLevelPQTest, EmptyQueue)
{
    TwoLevelPQ q(Config(100));
    EXPECT_EQ(q.SizeApprox(), 0u);
    EXPECT_FALSE(q.HasPendingAtOrBelow(100));
    std::vector<ClaimTicket> out;
    EXPECT_EQ(q.DequeueClaim(out, 10), 0u);
}

TEST(TwoLevelPQTest, DequeueInPriorityOrder)
{
    TwoLevelPQ q(Config(100));
    GEntry e1(1), e2(2), e3(3);
    MakePending(q, e2, 20, 0);
    MakePending(q, e1, 5, 0);
    MakePending(q, e3, 50, 0);
    EXPECT_EQ(q.SizeApprox(), 3u);

    std::vector<ClaimTicket> out;
    EXPECT_EQ(q.DequeueClaim(out, 1), 1u);
    EXPECT_EQ(out[0].entry, &e1);
    EXPECT_EQ(q.DequeueClaim(out, 1), 1u);
    EXPECT_EQ(out[1].entry, &e2);
    EXPECT_EQ(q.DequeueClaim(out, 1), 1u);
    EXPECT_EQ(out[2].entry, &e3);
    EXPECT_EQ(q.SizeApprox(), 0u);
}

TEST(TwoLevelPQTest, InfinityDequeuedLast)
{
    TwoLevelPQ q(Config(100));
    GEntry no_reader(1), urgent(2);
    RegisterUpdate(q, no_reader, {0, 0, {}});  // R empty ⇒ priority ∞
    MakePending(q, urgent, 9, 0);

    std::vector<ClaimTicket> out;
    EXPECT_EQ(q.DequeueClaim(out, 2), 2u);
    EXPECT_EQ(out[0].entry, &urgent);
    EXPECT_EQ(out[1].entry, &no_reader);
}

TEST(TwoLevelPQTest, GatePredicateMatchesPaperCondition)
{
    // Fig. 6 ❺: priority at the front is 1 and step 1 may not start
    // because 1 > 1 is false.
    TwoLevelPQ q(Config(100));
    GEntry e(1);
    MakePending(q, e, 1, 0);
    EXPECT_TRUE(q.HasPendingAtOrBelow(1));   // blocked
    EXPECT_FALSE(q.HasPendingAtOrBelow(0));  // step 0 may proceed

    std::vector<ClaimTicket> out;
    ASSERT_EQ(q.DequeueClaim(out, 1), 1u);
    // Claimed but not yet applied: the gate must stay closed (the claim
    // is in flight).
    EXPECT_TRUE(q.HasPendingAtOrBelow(1));
    FlushClaimed(q, out[0], [](Key, const WriteRecord &) {});
    EXPECT_FALSE(q.HasPendingAtOrBelow(1));  // flushed ⇒ unblocked
}

TEST(TwoLevelPQTest, AdjustPriorityLeavesLazyStaleCopy)
{
    TwoLevelPQ q(Config(100));
    GEntry e(1), f(2);
    RegisterRead(q, e, 4);
    RegisterRead(q, e, 30);
    RegisterUpdate(q, e, {0, 0, {}});  // e: priority 4
    MakePending(q, f, 4, 0);           // f: priority 4 (same bucket)
    EXPECT_TRUE(q.HasPendingAtOrBelow(4));

    // Training reaches step 4; e's update advances its priority to 30 and
    // leaves a stale physical copy in bucket 4 (paper's lazy deletion).
    RegisterUpdate(q, e, {4, 0, {}});
    EXPECT_TRUE(q.HasPendingAtOrBelow(4));  // f still there
    EXPECT_EQ(q.SizeApprox(), 2u);

    // Draining bucket 4 must claim f, discard e's stale copy, and find e
    // again at its new priority 30.
    std::vector<ClaimTicket> out;
    EXPECT_EQ(q.DequeueClaim(out, 10), 2u);
    EXPECT_EQ(out[0].entry, &f);
    EXPECT_EQ(out[1].entry, &e);
    EXPECT_EQ(q.staleDiscards(), 1u);  // the bucket-4 leftover of e
    for (const ClaimTicket &ticket : out)
        FlushClaimed(q, ticket, [](Key, const WriteRecord &) {});
    EXPECT_FALSE(q.HasPendingAtOrBelow(100));
}

TEST(TwoLevelPQTest, ScanRangeCompressionReducesScans)
{
    // Same workload with and without compression; compressed scans must
    // touch far fewer priority-index slots.
    auto run = [](bool compressed) {
        TwoLevelPQ q(Config(10000));
        q.setScanCompression(compressed);
        std::vector<std::unique_ptr<GEntry>> entries;
        for (int i = 0; i < 50; ++i) {
            entries.push_back(std::make_unique<GEntry>(i));
            const Step read = 9000 + i;
            RegisterRead(q, *entries.back(), read);
            RegisterUpdate(q, *entries.back(), {8999, 0, {}});
        }
        q.SetScanBounds(/*floor=*/9000, /*horizon=*/9100);
        std::vector<ClaimTicket> out;
        while (q.DequeueClaim(out, 8) > 0) {
        }
        EXPECT_EQ(out.size(), 50u);
        return q.bucketsScanned();
    };
    const auto with = run(true);
    const auto without = run(false);
    EXPECT_LT(with * 10, without);
}

TEST(TwoLevelPQTest, ReEnqueueAfterFlush)
{
    TwoLevelPQ q(Config(100));
    GEntry e(1);
    MakePending(q, e, 3, 0);
    std::vector<ClaimTicket> out;
    ASSERT_EQ(q.DequeueClaim(out, 1), 1u);
    EXPECT_EQ(FlushClaimed(q, out[0], [](Key, const WriteRecord &) {}),
              1u);

    // New update ⇒ entry re-enqueued (a second physical copy may exist in
    // the ∞ bucket; validation discards it).
    RegisterRead(q, e, 7);
    RegisterUpdate(q, e, {3, 0, {}});
    EXPECT_EQ(q.SizeApprox(), 1u);
    out.clear();
    EXPECT_EQ(q.DequeueClaim(out, 4), 1u);
    EXPECT_EQ(out[0].entry, &e);
}

TEST(TwoLevelPQTest, TakeClaimedWritesSortsByStepThenSrc)
{
    TwoLevelPQ q(Config(100));
    GEntry e(1);
    RegisterRead(q, e, 50);
    RegisterUpdate(q, e, {7, 1, {}});
    RegisterUpdate(q, e, {7, 0, {}});
    RegisterUpdate(q, e, {2, 3, {}});
    std::vector<ClaimTicket> out;
    ASSERT_EQ(q.DequeueClaim(out, 1), 1u);
    auto writes = TakeClaimedWrites(*out[0].entry);
    ASSERT_EQ(writes.size(), 3u);
    EXPECT_EQ(writes[0].step, 2u);
    EXPECT_EQ(writes[1].step, 7u);
    EXPECT_EQ(writes[1].src, 0u);
    EXPECT_EQ(writes[2].src, 1u);
}

TEST(TwoLevelPQTest, BatchedDequeueAmortisesScan)
{
    TwoLevelPQ q(Config(1000));
    std::vector<std::unique_ptr<GEntry>> entries;
    for (int i = 0; i < 64; ++i) {
        entries.push_back(std::make_unique<GEntry>(i));
        RegisterRead(q, *entries.back(), 500);
        RegisterUpdate(q, *entries.back(), {499, 0, {}});
    }
    std::vector<ClaimTicket> out;
    EXPECT_EQ(q.DequeueClaim(out, 64), 64u);
    EXPECT_EQ(q.SizeApprox(), 0u);
}

TEST(TwoLevelPQTest, ReEnqueueDuringClaimLeavesNoZombie)
{
    // Regression: the drain thread re-enqueues an entry between a flush
    // thread's claim and its take; the flush consumes the new writes too
    // and must retire the standing enqueue, or the queue never looks
    // empty again (a live-lock observed in the async ablation).
    TwoLevelPQ q(Config(100));
    GEntry e(1);
    RegisterRead(q, e, 5);
    RegisterRead(q, e, 9);
    RegisterUpdate(q, e, {2, 0, {}});  // enqueued at priority 5

    std::vector<ClaimTicket> out;
    ASSERT_EQ(q.DequeueClaim(out, 1), 1u);  // claimed (enqueued=false)

    // Drain thread interleaves: step 5's update arrives, re-enqueuing
    // the claimed entry at priority 9.
    RegisterUpdate(q, e, {5, 0, {}});
    EXPECT_EQ(q.SizeApprox(), 1u);

    // The flush takes both records and retires the standing enqueue.
    EXPECT_EQ(FlushClaimed(q, out[0], [](Key, const WriteRecord &) {}),
              2u);
    EXPECT_EQ(q.SizeApprox(), 0u);
    EXPECT_FALSE(q.HasPendingAtOrBelow(100));
    // The stale physical copy left in bucket 9 is discardable garbage.
    out.clear();
    EXPECT_EQ(q.DequeueClaim(out, 4), 0u);
}

TEST(TwoLevelPQTest, PriorityAtMaxStepIsRepresentable)
{
    TwoLevelPQ q(Config(10));
    GEntry e(1);
    RegisterRead(q, e, 10);
    RegisterUpdate(q, e, {9, 0, {}});
    EXPECT_TRUE(q.HasPendingAtOrBelow(10));
    std::vector<ClaimTicket> out;
    EXPECT_EQ(q.DequeueClaim(out, 1), 1u);
}

}  // namespace
}  // namespace frugal
