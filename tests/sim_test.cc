/**
 * Tests for the timing simulator: cost-model relationships the paper
 * reports must hold for the default calibration, and the engine
 * simulators must order systems the way the evaluation does.
 */
#include <gtest/gtest.h>

#include "sim/cache_sim.h"
#include "sim/cost_model.h"
#include "sim/engine_sim.h"
#include "sim/gpu_spec.h"

namespace frugal {
namespace {

TEST(GpuSpecTest, Table1Entries)
{
    EXPECT_EQ(AllGpuSpecs().size(), 4u);
    EXPECT_DOUBLE_EQ(A100().tensor_fp32_tflops, 156.0);
    EXPECT_DOUBLE_EQ(RTX4090().tensor_fp16_tflops, 330.0);
    EXPECT_TRUE(A100().supports_p2p);
    EXPECT_FALSE(RTX3090().supports_p2p);
    EXPECT_TRUE(A30().datacenter);
}

TEST(GpuSpecTest, CostEffectivenessClaims)
{
    // §2.2: RTX 4090 $/TFLOPS is ~18.4% of A100's.
    const double ratio =
        RTX4090().DollarPerFp32Tflops() / A100().DollarPerFp32Tflops();
    EXPECT_NEAR(ratio, 0.184, 0.02);
    // Exp #9 price ratio.
    EXPECT_NEAR(A30().price_usd / RTX3090().price_usd, 4.49, 0.01);
}

TEST(CostModelTest, BouncedAllToAllNearHalfOfP2p)
{
    CostModelConfig cost;
    const double p2p = AllToAllBandwidth(cost, A30(), 4, 100e6);
    const double bounced = AllToAllBandwidth(cost, RTX3090(), 4, 100e6);
    // Fig 3b: commodity ≈ 54% of datacenter; accept 0.4–0.6.
    EXPECT_GT(bounced / p2p, 0.40);
    EXPECT_LT(bounced / p2p, 0.60);
    // Both in the low-GB/s regime the paper plots.
    EXPECT_GT(p2p, 1e9);
    EXPECT_LT(p2p, 10e9);
}

TEST(CostModelTest, AllToAllDegradesWithSmallTransfers)
{
    CostModelConfig cost;
    EXPECT_LT(AllToAllBandwidth(cost, RTX3090(), 4, 1e6),
              AllToAllBandwidth(cost, RTX3090(), 4, 100e6));
}

TEST(CostModelTest, SingleGpuNeedsNoCollective)
{
    CostModelConfig cost;
    EXPECT_EQ(AllToAllTime(cost, RTX3090(), 1, 1e6), 0.0);
}

TEST(CostModelTest, UvaPrimitiveSpeedupMatchesFig10)
{
    CostModelConfig cost;
    for (std::uint64_t batch : {128u, 1024u, 2048u}) {
        const double cpu =
            HostReadCpuPrimitive(cost, RTX3090(), batch, 128, 4);
        const double uva =
            HostReadUvaPath(cost, RTX3090(), batch, 128, 4);
        EXPECT_GT(cpu / uva, 2.5) << batch;
        EXPECT_LT(cpu / uva, 4.5) << batch;
    }
}

TEST(CostModelTest, CpuPathDominatedBySoftware)
{
    CostModelConfig cost;
    // Engine-level miss path must be far more expensive than the raw
    // primitive (framework dispatch, routing).
    EXPECT_GT(HostReadCpuPath(cost, RTX3090(), 1024, 128, 4),
              5 * HostReadCpuPrimitive(cost, RTX3090(), 1024, 128, 4));
}

TEST(CostModelTest, DatacenterHostPathCheaper)
{
    CostModelConfig cost;
    EXPECT_LT(HostReadCpuPath(cost, A30(), 1024, 128, 4),
              HostReadCpuPath(cost, RTX3090(), 1024, 128, 4));
}

TEST(CostModelTest, FlushCapacityScalesThenInterferes)
{
    CostModelConfig cost;
    const double c2 = FlushCapacity(cost, 2, 128, false, 1000);
    const double c8 = FlushCapacity(cost, 8, 128, false, 1000);
    EXPECT_GT(c8, 2.0 * c2);
    EXPECT_EQ(FlushInterferenceFactor(cost, 8), 1.0);
    EXPECT_GT(FlushInterferenceFactor(cost, 20), 1.2);
}

TEST(CostModelTest, TreeHeapOpCostGrowsWithSizeAndThreads)
{
    CostModelConfig cost;
    const double two = PqOpCost(cost, false, 1'000'000, 8);
    const double tree_small = PqOpCost(cost, true, 1'000, 1);
    const double tree_big = PqOpCost(cost, true, 1'000'000, 1);
    const double tree_contended = PqOpCost(cost, true, 1'000'000, 8);
    EXPECT_GT(tree_small, two);
    EXPECT_GT(tree_big, tree_small);       // O(log N)
    EXPECT_GT(tree_contended, tree_big);   // near-root serialisation
    // Two-level is O(1): size-independent.
    EXPECT_EQ(PqOpCost(cost, false, 1'000, 1),
              PqOpCost(cost, false, 1'000'000'000, 64));
}

TEST(CacheSimTest, LruBehaviour)
{
    CacheSim cache(2);
    EXPECT_FALSE(cache.Access(1));
    EXPECT_FALSE(cache.Access(2));
    EXPECT_TRUE(cache.Access(1));   // hit refreshes 1
    EXPECT_FALSE(cache.Access(3));  // evicts 2
    EXPECT_TRUE(cache.Access(1));
    EXPECT_FALSE(cache.Access(2));
    EXPECT_NEAR(cache.HitRatio(), 2.0 / 6.0, 1e-12);
}

class SimEngineOrderingTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SimEngineOrderingTest, FrugalWinsAtPaperScale)
{
    SimWorkload workload = MakeSyntheticWorkload(GetParam(), 1'000'000,
                                                 32, 20, 8, 1024);
    SimSystem system;
    system.gpu = RTX3090();
    system.n_gpus = 8;
    system.cache_ratio = 0.05;
    const double nocache =
        SimulateEngine(SimEngine::kNoCache, workload, system).throughput;
    const double cached =
        SimulateEngine(SimEngine::kCached, workload, system).throughput;
    const double sync =
        SimulateEngine(SimEngine::kFrugalSync, workload, system)
            .throughput;
    const double frugal =
        SimulateEngine(SimEngine::kFrugal, workload, system).throughput;

    // The paper's ordering at moderate/large batches (Fig 8).
    EXPECT_GT(frugal, sync);
    EXPECT_GT(frugal, nocache);
    EXPECT_GT(frugal, cached);
    EXPECT_GT(nocache, cached);  // HugeCTR below PyTorch on commodity
    // Magnitudes within the paper's reported ranges (loosely).
    EXPECT_GT(frugal / cached, 2.0);
    EXPECT_LT(frugal / cached, 15.0);
}

INSTANTIATE_TEST_SUITE_P(Distributions, SimEngineOrderingTest,
                         ::testing::Values("uniform", "zipf-0.9",
                                           "zipf-0.99"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-' || c == '.')
                                     c = '_';
                             return name;
                         });

TEST(SimEngineTest, SmallBatchFavoursNoCache)
{
    // Fig 8 inset: at batch 128 cache-enabled systems do not beat
    // PyTorch.
    SimWorkload workload = MakeSyntheticWorkload("zipf-0.9", 1'000'000,
                                                 32, 20, 8, 128);
    SimSystem system;
    system.gpu = RTX3090();
    system.n_gpus = 8;
    system.cache_ratio = 0.05;
    const double nocache =
        SimulateEngine(SimEngine::kNoCache, workload, system).throughput;
    const double cached =
        SimulateEngine(SimEngine::kCached, workload, system).throughput;
    const double frugal =
        SimulateEngine(SimEngine::kFrugal, workload, system).throughput;
    EXPECT_GT(nocache, cached);
    EXPECT_GT(nocache, frugal * 0.9);  // at worst a near-tie
}

TEST(SimEngineTest, StallReductionMatchesFig9Band)
{
    SimWorkload workload = MakeSyntheticWorkload("zipf-0.9", 10'000'000,
                                                 32, 30, 8, 1024);
    SimSystem system;
    system.gpu = RTX3090();
    system.n_gpus = 8;
    system.cache_ratio = 0.01;
    const SimResult sync =
        SimulateEngine(SimEngine::kFrugalSync, workload, system);
    const SimResult frugal =
        SimulateEngine(SimEngine::kFrugal, workload, system);
    const double reduction = sync.stall_mean / frugal.stall_mean;
    EXPECT_GT(reduction, 30.0);   // paper: 34-101x
    EXPECT_LT(reduction, 300.0);
}

TEST(SimEngineTest, TreeHeapHurtsFrugal)
{
    SimWorkload workload = MakeSyntheticWorkload("zipf-0.9", 10'000'000,
                                                 32, 20, 8, 1024);
    SimSystem system;
    system.gpu = RTX3090();
    system.n_gpus = 8;
    SimSystem tree = system;
    tree.tree_heap = true;
    const SimResult two =
        SimulateEngine(SimEngine::kFrugal, workload, system);
    const SimResult heap =
        SimulateEngine(SimEngine::kFrugal, workload, tree);
    EXPECT_GT(two.throughput, heap.throughput);
    EXPECT_GT(heap.stall_mean, two.stall_mean);
    EXPECT_GT(heap.g_entry_update_mean, two.g_entry_update_mean);
}

TEST(SimEngineTest, FlushThreadSweetSpot)
{
    // Fig 17: throughput rises with flush threads, then declines.
    SimWorkload workload = MakeSyntheticWorkload("zipf-0.9", 10'000'000,
                                                 32, 20, 8, 1024);
    SimSystem system;
    system.gpu = RTX3090();
    system.n_gpus = 8;
    auto thr = [&](int threads) {
        SimSystem s = system;
        s.flush_threads = threads;
        return SimulateEngine(SimEngine::kFrugal, workload, s)
            .throughput;
    };
    EXPECT_GT(thr(12), thr(2));
    EXPECT_GT(thr(12), thr(30));
}

TEST(SimEngineTest, DeterministicForSameInputs)
{
    SimWorkload workload = MakeSyntheticWorkload("zipf-0.9", 100'000, 32,
                                                 10, 4, 256);
    SimSystem system;
    system.gpu = RTX3090();
    system.n_gpus = 4;
    const SimResult a =
        SimulateEngine(SimEngine::kFrugal, workload, system);
    const SimResult b =
        SimulateEngine(SimEngine::kFrugal, workload, system);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    EXPECT_DOUBLE_EQ(a.stall_mean, b.stall_mean);
}

TEST(SimEngineTest, BreakdownCategoriesBehave)
{
    SimWorkload workload = MakeSyntheticWorkload("zipf-0.9", 1'000'000,
                                                 32, 20, 8, 1024);
    SimSystem system;
    system.gpu = RTX3090();
    system.n_gpus = 8;
    const SimResult cached =
        SimulateEngine(SimEngine::kCached, workload, system);
    const SimResult sync =
        SimulateEngine(SimEngine::kFrugalSync, workload, system);
    const SimResult frugal =
        SimulateEngine(SimEngine::kFrugal, workload, system);
    // Only the a2a system communicates collectively.
    EXPECT_GT(cached.mean_iteration.comm, 0.0);
    EXPECT_EQ(sync.mean_iteration.comm, 0.0);
    EXPECT_EQ(frugal.mean_iteration.comm, 0.0);
    // Frugal removes nearly all host-DRAM time from the critical path.
    EXPECT_LT(frugal.mean_iteration.host_dram,
              0.1 * sync.mean_iteration.host_dram);
    EXPECT_LT(frugal.mean_iteration.host_dram,
              0.1 * cached.mean_iteration.host_dram);
}

}  // namespace
}  // namespace frugal
