/**
 * @file
 * Bit-exactness tests for the vectorised row kernels: every kernel must
 * produce byte-identical results to a plain scalar loop with the same
 * per-element expression, across the dispatch-table dims, odd dims that
 * fall through to the runtime-trip-count path, and randomized values
 * (including negatives, tiny and large magnitudes).
 */
#include "table/row_kernels.h"

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace frugal {
namespace {

/** Scalar references: the exact expressions the kernels promise, with
 *  no __restrict and no vectorisation pragma. */
void
ScalarCopy(float *dst, const float *src, std::size_t dim)
{
    for (std::size_t j = 0; j < dim; ++j)
        dst[j] = src[j];
}

void
ScalarAxpy(float *y, float a, const float *x, std::size_t dim)
{
    for (std::size_t j = 0; j < dim; ++j)
        y[j] += a * x[j];
}

void
ScalarSgd(float *row, const float *grad, float lr, std::size_t dim)
{
    for (std::size_t j = 0; j < dim; ++j)
        row[j] -= lr * grad[j];
}

void
ScalarAdagrad(float *row, float *acc, const float *grad, float lr,
              float eps, std::size_t dim)
{
    for (std::size_t j = 0; j < dim; ++j) {
        acc[j] += grad[j] * grad[j];
        row[j] -= lr * grad[j] / (std::sqrt(acc[j]) + eps);
    }
}

/** Byte-level equality — NaN-safe and distinguishes -0.0f from 0.0f,
 *  which float == would not. */
::testing::AssertionResult
BitEqual(const std::vector<float> &a, const std::vector<float> &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure() << "size mismatch";
    if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
        for (std::size_t j = 0; j < a.size(); ++j) {
            if (std::memcmp(&a[j], &b[j], sizeof(float)) != 0) {
                return ::testing::AssertionFailure()
                       << "element " << j << ": " << a[j] << " vs "
                       << b[j];
            }
        }
    }
    return ::testing::AssertionSuccess();
}

/** Dims covering every literal dispatch case plus runtime fallthroughs
 *  (odd, prime, one-past-a-case). */
const std::size_t kDims[] = {1,  3,  4,  5,  7,  8,  16, 17,
                             32, 33, 64, 65, 100, 128, 129, 257};

std::vector<float>
RandomRow(std::mt19937_64 &rng, std::size_t dim)
{
    // Mixed magnitudes: mostly unit-scale, some tiny, some large, some
    // exact zeros — the values an embedding row/gradient can hold.
    std::uniform_real_distribution<float> unit(-1.0f, 1.0f);
    std::uniform_int_distribution<int> kind(0, 9);
    std::vector<float> row(dim);
    for (float &v : row) {
        switch (kind(rng)) {
        case 0: v = unit(rng) * 1e-30f; break;
        case 1: v = unit(rng) * 1e20f; break;
        case 2: v = 0.0f; break;
        default: v = unit(rng); break;
        }
    }
    return row;
}

TEST(RowKernelsTest, CopyBitExact)
{
    std::mt19937_64 rng(1);
    for (std::size_t dim : kDims) {
        for (int round = 0; round < 20; ++round) {
            const std::vector<float> src = RandomRow(rng, dim);
            std::vector<float> got(dim, -7.0f), want(dim, -7.0f);
            RowCopy(got.data(), src.data(), dim);
            ScalarCopy(want.data(), src.data(), dim);
            EXPECT_TRUE(BitEqual(got, want)) << "dim " << dim;
        }
    }
}

TEST(RowKernelsTest, AxpyBitExact)
{
    std::mt19937_64 rng(2);
    std::uniform_real_distribution<float> coeff(-2.0f, 2.0f);
    for (std::size_t dim : kDims) {
        for (int round = 0; round < 20; ++round) {
            const std::vector<float> x = RandomRow(rng, dim);
            const std::vector<float> y0 = RandomRow(rng, dim);
            const float a = coeff(rng);
            std::vector<float> got = y0, want = y0;
            RowAxpy(got.data(), a, x.data(), dim);
            ScalarAxpy(want.data(), a, x.data(), dim);
            EXPECT_TRUE(BitEqual(got, want)) << "dim " << dim;
        }
    }
}

TEST(RowKernelsTest, SgdBitExact)
{
    std::mt19937_64 rng(3);
    std::uniform_real_distribution<float> rate(0.0f, 1.0f);
    for (std::size_t dim : kDims) {
        for (int round = 0; round < 20; ++round) {
            const std::vector<float> grad = RandomRow(rng, dim);
            const std::vector<float> row0 = RandomRow(rng, dim);
            const float lr = rate(rng);
            std::vector<float> got = row0, want = row0;
            RowSgdApply(got.data(), grad.data(), lr, dim);
            ScalarSgd(want.data(), grad.data(), lr, dim);
            EXPECT_TRUE(BitEqual(got, want)) << "dim " << dim;
        }
    }
}

TEST(RowKernelsTest, AdagradBitExact)
{
    std::mt19937_64 rng(4);
    std::uniform_real_distribution<float> rate(0.0f, 1.0f);
    for (std::size_t dim : kDims) {
        for (int round = 0; round < 20; ++round) {
            const std::vector<float> grad = RandomRow(rng, dim);
            const std::vector<float> row0 = RandomRow(rng, dim);
            std::vector<float> acc0 = RandomRow(rng, dim);
            for (float &v : acc0)
                v = std::abs(v);  // accumulators are sums of squares
            const float lr = rate(rng);
            const float eps = 1e-10f;
            std::vector<float> got_row = row0, want_row = row0;
            std::vector<float> got_acc = acc0, want_acc = acc0;
            RowAdagradApply(got_row.data(), got_acc.data(), grad.data(),
                            lr, eps, dim);
            ScalarAdagrad(want_row.data(), want_acc.data(), grad.data(),
                          lr, eps, dim);
            EXPECT_TRUE(BitEqual(got_row, want_row)) << "dim " << dim;
            EXPECT_TRUE(BitEqual(got_acc, want_acc)) << "dim " << dim;
        }
    }
}

TEST(RowKernelsTest, RepeatedApplicationMatchesScalarTrajectory)
{
    // 100 sequential SGD+Adagrad steps: bit-exactness must hold along a
    // whole training trajectory, not just one application.
    std::mt19937_64 rng(5);
    const std::size_t dim = 32;
    std::vector<float> row_k = RandomRow(rng, dim), row_s = row_k;
    std::vector<float> acc_k(dim, 0.0f), acc_s(dim, 0.0f);
    for (int step = 0; step < 100; ++step) {
        const std::vector<float> grad = RandomRow(rng, dim);
        RowSgdApply(row_k.data(), grad.data(), 0.05f, dim);
        ScalarSgd(row_s.data(), grad.data(), 0.05f, dim);
        RowAdagradApply(row_k.data(), acc_k.data(), grad.data(), 0.01f,
                        1e-10f, dim);
        ScalarAdagrad(row_s.data(), acc_s.data(), grad.data(), 0.01f,
                      1e-10f, dim);
        ASSERT_TRUE(BitEqual(row_k, row_s)) << "step " << step;
        ASSERT_TRUE(BitEqual(acc_k, acc_s)) << "step " << step;
    }
}

}  // namespace
}  // namespace frugal
