/** Tests for the host embedding table and sparse optimizers. */
#include "table/embedding_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "table/optimizer.h"

namespace frugal {
namespace {

EmbeddingTableConfig
SmallConfig()
{
    EmbeddingTableConfig config;
    config.key_space = 100;
    config.dim = 8;
    config.init_seed = 7;
    config.init_scale = 0.05f;
    return config;
}

TEST(EmbeddingTableTest, DeterministicInit)
{
    HostEmbeddingTable a(SmallConfig()), b(SmallConfig());
    std::vector<float> ra(8), rb(8);
    for (Key k = 0; k < 100; ++k) {
        a.ReadRow(k, ra.data());
        b.ReadRow(k, rb.data());
        for (int j = 0; j < 8; ++j)
            ASSERT_EQ(ra[j], rb[j]) << "key " << k << " elem " << j;
    }
}

TEST(EmbeddingTableTest, InitWithinScale)
{
    HostEmbeddingTable table(SmallConfig());
    std::vector<float> row(8);
    for (Key k = 0; k < 100; ++k) {
        table.ReadRow(k, row.data());
        for (float v : row) {
            ASSERT_GE(v, -0.05f);
            ASSERT_LT(v, 0.05f);
        }
    }
}

TEST(EmbeddingTableTest, InitialValueMatchesTable)
{
    const auto config = SmallConfig();
    HostEmbeddingTable table(config);
    std::vector<float> row(8);
    table.ReadRow(42, row.data());
    for (std::size_t j = 0; j < 8; ++j) {
        EXPECT_EQ(row[j],
                  HostEmbeddingTable::InitialValue(
                      config.init_seed, config.init_scale, 42, j));
    }
}

TEST(EmbeddingTableTest, ApplyGradientSgd)
{
    HostEmbeddingTable table(SmallConfig());
    SgdOptimizer sgd(0.5f);
    std::vector<float> before(8), after(8);
    table.ReadRow(3, before.data());
    std::vector<float> grad(8, 1.0f);
    EXPECT_EQ(table.ApplyGradient(3, grad.data(), sgd), 1u);
    table.ReadRow(3, after.data());
    for (int j = 0; j < 8; ++j)
        EXPECT_FLOAT_EQ(after[j], before[j] - 0.5f);
    EXPECT_EQ(table.RowVersion(3), 1u);
    EXPECT_EQ(table.RowVersion(4), 0u);
}

TEST(EmbeddingTableTest, VersionsCountUpdates)
{
    HostEmbeddingTable table(SmallConfig());
    SgdOptimizer sgd(0.1f);
    std::vector<float> grad(8, 0.0f);
    for (int i = 0; i < 5; ++i)
        table.ApplyGradient(9, grad.data(), sgd);
    EXPECT_EQ(table.RowVersion(9), 5u);
}

// The batched flush path commits a whole per-key write run through
// ApplyGradients; it must be bit-identical to n single ApplyGradient
// calls (same optimizer math in the same order, no reassociation) and
// advance the row version by exactly n.
TEST(EmbeddingTableTest, ApplyGradientsMatchesSequentialBitExact)
{
    for (const char *name : {"sgd", "adagrad"}) {
        HostEmbeddingTable batched(SmallConfig());
        HostEmbeddingTable sequential(SmallConfig());
        auto opt_batched = MakeOptimizer(name, 0.3f, 100, 8);
        auto opt_sequential = MakeOptimizer(name, 0.3f, 100, 8);

        std::vector<std::vector<float>> grads;
        for (int i = 0; i < 6; ++i) {
            std::vector<float> g(8);
            for (int j = 0; j < 8; ++j)
                g[j] = 0.013f * static_cast<float>((i + 1) * (j - 3));
            grads.push_back(std::move(g));
        }
        std::vector<const float *> ptrs;
        for (const auto &g : grads)
            ptrs.push_back(g.data());

        EXPECT_EQ(batched.ApplyGradients(5, ptrs.data(), ptrs.size(),
                                         *opt_batched),
                  grads.size())
            << name;
        for (const auto &g : grads)
            sequential.ApplyGradient(5, g.data(), *opt_sequential);

        std::vector<float> ra(8), rb(8);
        batched.ReadRow(5, ra.data());
        sequential.ReadRow(5, rb.data());
        for (int j = 0; j < 8; ++j) {
            EXPECT_EQ(std::memcmp(&ra[j], &rb[j], sizeof(float)), 0)
                << name << " j=" << j;
        }
        EXPECT_EQ(batched.RowVersion(5), sequential.RowVersion(5)) << name;
    }
}

TEST(EmbeddingTableTest, ResetRestoresInit)
{
    HostEmbeddingTable table(SmallConfig());
    SgdOptimizer sgd(0.5f);
    std::vector<float> grad(8, 1.0f), row(8);
    table.ApplyGradient(3, grad.data(), sgd);
    table.ResetParameters();
    table.ReadRow(3, row.data());
    for (std::size_t j = 0; j < 8; ++j) {
        EXPECT_EQ(row[j], HostEmbeddingTable::InitialValue(7, 0.05f, 3, j));
    }
    EXPECT_EQ(table.RowVersion(3), 0u);
}

TEST(EmbeddingTableTest, SizeBytesMatchesShape)
{
    HostEmbeddingTable table(SmallConfig());
    EXPECT_EQ(table.SizeBytes(), 100u * 8u * sizeof(float));
}

TEST(EmbeddingTableTest, ConcurrentDisjointApplies)
{
    auto config = SmallConfig();
    config.key_space = 1000;
    HostEmbeddingTable table(config);
    SgdOptimizer sgd(1.0f);
    constexpr int kThreads = 4;
    constexpr int kApplies = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            std::vector<float> grad(8, 1.0f);
            Rng rng(t);
            for (int i = 0; i < kApplies; ++i)
                table.ApplyGradient(rng.NextBounded(1000), grad.data(),
                                    sgd);
        });
    }
    for (auto &th : threads)
        th.join();
    std::uint64_t total = 0;
    for (Key k = 0; k < 1000; ++k)
        total += table.RowVersion(k);
    EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kApplies);
}

TEST(AdagradTest, ShrinkingEffectiveStep)
{
    AdagradOptimizer adagrad(1.0f, 10, 4);
    std::vector<float> row(4, 0.0f);
    std::vector<float> grad(4, 1.0f);
    adagrad.Apply(0, row.data(), grad.data(), 4);
    const float first_step = -row[0];
    adagrad.Apply(0, row.data(), grad.data(), 4);
    const float second_step = -row[0] - first_step;
    EXPECT_GT(first_step, second_step);  // accumulator grows
    EXPECT_NEAR(first_step, 1.0f, 1e-4);
    EXPECT_NEAR(second_step, 1.0f / std::sqrt(2.0f), 1e-4);
}

TEST(AdagradTest, PerKeyStateIsIndependent)
{
    AdagradOptimizer adagrad(1.0f, 10, 2);
    std::vector<float> row0(2, 0.0f), row1(2, 0.0f);
    std::vector<float> grad(2, 1.0f);
    adagrad.Apply(0, row0.data(), grad.data(), 2);
    adagrad.Apply(0, row0.data(), grad.data(), 2);
    adagrad.Apply(1, row1.data(), grad.data(), 2);
    // Key 1's first step is full-size despite key 0's history.
    EXPECT_NEAR(-row1[0], 1.0f, 1e-4);
}

TEST(OptimizerFactoryTest, Names)
{
    auto sgd = MakeOptimizer("sgd", 0.1f, 10, 4);
    EXPECT_EQ(sgd->Name(), "sgd");
    auto ada = MakeOptimizer("adagrad", 0.1f, 10, 4);
    EXPECT_EQ(ada->Name(), "adagrad");
}

}  // namespace
}  // namespace frugal
