/** Tests for trace record/replay, plus the umbrella header compiling. */
#include "frugal/frugal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace frugal {
namespace {

class TraceIoTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = "/tmp/frugal_trace_test_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
                ".bin";
    }
    void TearDown() override { std::remove(path_.c_str()); }
    std::string path_;
};

Trace
MakeTrace()
{
    Rng rng(77);
    ZipfDistribution dist(1000, 0.9);
    return Trace::Synthetic(dist, rng, 12, 3, 16);
}

TEST_F(TraceIoTest, RoundTripExact)
{
    const Trace original = MakeTrace();
    SaveTrace(original, path_);
    const auto loaded = LoadTrace(path_);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->NumSteps(), original.NumSteps());
    EXPECT_EQ(loaded->n_gpus(), original.n_gpus());
    EXPECT_EQ(loaded->key_space(), original.key_space());
    for (std::size_t s = 0; s < original.NumSteps(); ++s) {
        for (GpuId g = 0; g < original.n_gpus(); ++g)
            ASSERT_EQ(loaded->KeysFor(s, g), original.KeysFor(s, g));
    }
}

TEST_F(TraceIoTest, ReplayTrainsIdentically)
{
    const Trace original = MakeTrace();
    SaveTrace(original, path_);
    const auto replayed = LoadTrace(path_);
    ASSERT_TRUE(replayed.has_value());

    EngineConfig config;
    config.n_gpus = 3;
    config.dim = 4;
    config.key_space = 1000;
    config.flush_threads = 2;
    const GradFn task = MakeLinearGradTask();

    FrugalEngine a(config), b(config);
    a.Run(original, task);
    b.Run(*replayed, task);
    EXPECT_TRUE(TablesBitEqual(a.table(), b.table()));
}

TEST_F(TraceIoTest, MissingFile)
{
    EXPECT_FALSE(LoadTrace("/tmp/definitely-missing-trace.bin")
                     .has_value());
}

TEST_F(TraceIoTest, CorruptChecksumRejected)
{
    SaveTrace(MakeTrace(), path_);
    {
        std::fstream file(path_,
                          std::ios::binary | std::ios::in | std::ios::out);
        file.seekp(80);
        char byte = 0x77;
        file.write(&byte, 1);
    }
    EXPECT_FALSE(LoadTrace(path_).has_value());
}

TEST_F(TraceIoTest, GarbageRejected)
{
    std::ofstream out(path_, std::ios::binary);
    out << "garbage";
    out.close();
    EXPECT_FALSE(LoadTrace(path_).has_value());
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips)
{
    const Trace empty(std::vector<StepKeys>{}, 10, 2);
    SaveTrace(empty, path_);
    const auto loaded = LoadTrace(path_);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->NumSteps(), 0u);
    EXPECT_EQ(loaded->n_gpus(), 2u);
}

}  // namespace
}  // namespace frugal
