/**
 * NextUseIndex correctness: the oracle is checked against brute-force
 * forward scans of the same trace — every hint, every dead list, every
 * successor chain. The index only ever *moves* cache reads, but a wrong
 * hint silently degrades eviction to worse-than-LRU and a wrong dead
 * list evicts a row that is still needed, so exactness is the contract.
 */
#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/distribution.h"
#include "common/rng.h"
#include "data/next_use.h"
#include "data/trace.h"

namespace frugal {
namespace {

/** First step > `after` whose key lists (any GPU) contain `key`, by
 *  exhaustive scan. */
Step
BruteNextUse(const Trace &trace, Key key, Step after)
{
    for (std::size_t s = after + 1; s < trace.NumSteps(); ++s) {
        for (std::uint32_t g = 0; g < trace.n_gpus(); ++g) {
            const auto &keys = trace.KeysFor(s, g);
            if (std::find(keys.begin(), keys.end(), key) != keys.end())
                return static_cast<Step>(s);
        }
    }
    return NextUseIndex::kNever;
}

Trace
RandomTrace(std::uint64_t seed, std::size_t steps, std::uint32_t gpus,
            std::size_t keys_per_gpu, std::uint64_t key_space,
            double theta)
{
    Rng rng(seed);
    ZipfDistribution dist(key_space, theta);
    return Trace::Synthetic(dist, rng, steps, gpus, keys_per_gpu);
}

TEST(NextUseIndexTest, HintRowsMatchBruteForce)
{
    const Trace trace = RandomTrace(7, 40, 2, 12, 64, 0.9);
    const NextUseIndex index = trace.BuildNextUseIndex();
    for (std::size_t s = 0; s < trace.NumSteps(); ++s) {
        for (std::uint32_t g = 0; g < trace.n_gpus(); ++g) {
            const auto &keys = trace.KeysFor(s, g);
            const auto hints = index.HintRow(s, g);
            ASSERT_EQ(hints.size(), keys.size());
            for (std::size_t i = 0; i < keys.size(); ++i) {
                EXPECT_EQ(hints[i],
                          BruteNextUse(trace, keys[i],
                                       static_cast<Step>(s)))
                    << "step " << s << " gpu " << g << " key "
                    << keys[i];
            }
        }
    }
}

TEST(NextUseIndexTest, NextUseAfterMatchesBruteForce)
{
    // Single-GPU and multi-GPU shapes; NextUseAfter must answer for
    // arbitrary (key, step), including steps where the key is absent.
    for (const std::uint32_t gpus : {1u, 3u}) {
        const Trace trace = RandomTrace(11 + gpus, 25, gpus, 8, 40, 0.8);
        const NextUseIndex index = trace.BuildNextUseIndex();
        for (Key key = 0; key < trace.key_space(); ++key) {
            for (Step s = 0; s < trace.NumSteps(); ++s) {
                ASSERT_EQ(index.NextUseAfter(key, s),
                          BruteNextUse(trace, key, s))
                    << "key " << key << " after " << s;
            }
        }
    }
}

TEST(NextUseIndexTest, FirstUseAndUnknownKeys)
{
    const Trace trace = RandomTrace(3, 20, 2, 6, 32, 0.99);
    const NextUseIndex index = trace.BuildNextUseIndex();
    for (Key key = 0; key < trace.key_space(); ++key) {
        Step first = NextUseIndex::kNever;
        for (std::size_t s = 0;
             s < trace.NumSteps() && first == NextUseIndex::kNever; ++s) {
            for (std::uint32_t g = 0; g < trace.n_gpus(); ++g) {
                const auto &keys = trace.KeysFor(s, g);
                if (std::find(keys.begin(), keys.end(), key) !=
                    keys.end()) {
                    first = static_cast<Step>(s);
                    break;
                }
            }
        }
        EXPECT_EQ(index.FirstUse(key), first);
    }
    // Keys outside the traced set are "never used", not UB.
    EXPECT_EQ(index.FirstUse(trace.key_space() + 100),
              NextUseIndex::kNever);
    EXPECT_EQ(index.NextUseAfter(trace.key_space() + 100, 0),
              NextUseIndex::kNever);
}

TEST(NextUseIndexTest, DeadListsExactAtBoundaries)
{
    const Trace trace = RandomTrace(42, 30, 2, 10, 48, 0.9);
    const NextUseIndex index = trace.BuildNextUseIndex();

    // Every traced key appears in exactly one dead list — the one for
    // its final reading step — and no list holds duplicates.
    std::set<Key> seen;
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < trace.NumSteps(); ++s) {
        for (const Key key : index.DeadAfter(s)) {
            EXPECT_TRUE(seen.insert(key).second)
                << "key " << key << " dead twice";
            ++total;
            // Dead after s means: read at or before s, never after.
            EXPECT_EQ(BruteNextUse(trace, key, static_cast<Step>(s)),
                      NextUseIndex::kNever)
                << "key " << key << " declared dead after " << s
                << " but is read later";
        }
    }
    EXPECT_EQ(total, index.distinct_keys());
    EXPECT_EQ(seen.size(), index.distinct_keys());

    // Exactness of the boundary itself: a key read at its dead step.
    for (std::size_t s = 0; s < trace.NumSteps(); ++s) {
        for (const Key key : index.DeadAfter(s)) {
            bool read_at_s = false;
            for (std::uint32_t g = 0; g < trace.n_gpus(); ++g) {
                const auto &keys = trace.KeysFor(s, g);
                read_at_s = read_at_s ||
                            std::find(keys.begin(), keys.end(), key) !=
                                keys.end();
            }
            EXPECT_TRUE(read_at_s)
                << "key " << key << " dead after a step that never "
                << "read it";
        }
    }
}

TEST(NextUseIndexTest, SliceRebuildConsistency)
{
    // An index built over Slice(b, e) must agree with brute force over
    // the renumbered sub-trace — resumed runs rebuild their oracle from
    // the suffix and must not inherit full-trace lifetimes.
    const Trace trace = RandomTrace(13, 32, 2, 8, 40, 0.9);
    const Trace suffix = trace.Slice(10, 28);
    const NextUseIndex index = suffix.BuildNextUseIndex();
    ASSERT_EQ(suffix.NumSteps(), 18u);
    for (std::size_t s = 0; s < suffix.NumSteps(); ++s) {
        for (std::uint32_t g = 0; g < suffix.n_gpus(); ++g) {
            const auto &keys = suffix.KeysFor(s, g);
            const auto hints = index.HintRow(s, g);
            ASSERT_EQ(hints.size(), keys.size());
            for (std::size_t i = 0; i < keys.size(); ++i) {
                EXPECT_EQ(hints[i],
                          BruteNextUse(suffix, keys[i],
                                       static_cast<Step>(s)));
            }
        }
    }
}

TEST(NextUseIndexTest, SameStepCrossGpuReadsAreNotSuccessors)
{
    // Two GPUs reading one key in the same step: the hint for both
    // rows must point strictly past that step (or kNever), never at it.
    StepKeys s0;
    s0.per_gpu = {{1, 2}, {1, 3}};
    StepKeys s1;
    s1.per_gpu = {{2}, {1}};
    const Trace trace({s0, s1}, /*key_space=*/8, /*n_gpus=*/2);
    const NextUseIndex index = trace.BuildNextUseIndex();

    EXPECT_EQ(index.HintRow(0, 0)[0], 1u);  // key 1 -> step 1
    EXPECT_EQ(index.HintRow(0, 1)[0], 1u);  // same key, other GPU
    EXPECT_EQ(index.HintRow(0, 0)[1], 1u);  // key 2 -> step 1
    EXPECT_EQ(index.HintRow(0, 1)[1], NextUseIndex::kNever);  // key 3
    EXPECT_EQ(index.HintRow(1, 0)[0], NextUseIndex::kNever);
    EXPECT_EQ(index.HintRow(1, 1)[0], NextUseIndex::kNever);

    // Dead lists: key 3 dies after step 0; keys 1 and 2 after step 1.
    const auto dead0 = index.DeadAfter(0);
    ASSERT_EQ(dead0.size(), 1u);
    EXPECT_EQ(dead0[0], 3u);
    const auto dead1 = index.DeadAfter(1);
    std::vector<Key> d1(dead1.begin(), dead1.end());
    std::sort(d1.begin(), d1.end());
    EXPECT_EQ(d1, (std::vector<Key>{1, 2}));

    EXPECT_EQ(index.distinct_keys(), 3u);
    EXPECT_GT(index.MemoryBytes(), 0u);
}

TEST(NextUseIndexTest, EmptyAndDefaultIndex)
{
    const NextUseIndex empty;
    EXPECT_EQ(empty.NumSteps(), 0u);
    EXPECT_EQ(empty.distinct_keys(), 0u);
    EXPECT_EQ(empty.FirstUse(0), NextUseIndex::kNever);
    EXPECT_EQ(empty.NextUseAfter(0, 0), NextUseIndex::kNever);
}

}  // namespace
}  // namespace frugal
