/**
 * Integration tests: real models (DLRM, KG scorers) trained end-to-end
 * through the Frugal engine on synthetic datasets — loss must fall, and
 * Frugal must produce the same trained parameters as the oracle replay
 * (the paper's "does not affect model convergence" claim, §1 footnote).
 */
#include <gtest/gtest.h>

#include <memory>

#include "data/dataset_spec.h"
#include "models/dlrm.h"
#include "models/kg_model.h"
#include "runtime/baseline_engines.h"
#include "runtime/frugal_engine.h"
#include "runtime/oracle.h"

namespace frugal {
namespace {

TEST(DlrmIntegrationTest, LossDecreasesUnderFrugal)
{
    const DatasetSpec spec = DatasetByName("Avazu").Scaled(100000.0);
    RecDatasetGenerator gen(spec, 21);
    const std::uint32_t n_gpus = 2;
    const DlrmWorkload workload =
        DlrmWorkload::Build(gen, /*steps=*/800, n_gpus,
                            /*samples_per_gpu=*/16);

    EngineConfig config;
    config.n_gpus = n_gpus;
    config.dim = spec.embedding_dim;
    config.key_space = gen.key_space();
    config.cache_ratio = 0.10;
    config.flush_threads = 2;
    config.learning_rate = 0.5f;
    config.audit_consistency = true;

    DlrmConfig model_config;
    model_config.n_features = gen.n_features();
    model_config.dim = spec.embedding_dim;
    model_config.hidden = {32, 16};  // scaled-down top MLP
    model_config.n_gpus = n_gpus;
    model_config.dense_learning_rate = 0.3f;
    DlrmModel model(model_config);

    FrugalEngine engine(config);
    const RunReport report = engine.Run(
        workload.trace, model.BindGradFn(workload), model.BindStepHook());
    EXPECT_EQ(report.audit_violations, 0u);
    ASSERT_EQ(model.loss_history().size(), 800u);
    // The untrained first step sits near -ln(0.5) ≈ 0.69; the synthetic
    // labels carry irreducible noise, so expect a solid but bounded
    // drop toward the instance's Bayes floor (~0.62 here).
    const double first = model.loss_history().front();
    const double late = model.MeanLossOverLast(40);
    EXPECT_GT(first, 0.55);
    EXPECT_LT(late, first - 0.04)
        << "first " << first << " late " << late;
}

TEST(DlrmIntegrationTest, FrugalMatchesOracleTraining)
{
    const DatasetSpec spec = DatasetByName("Criteo").Scaled(100000.0);
    RecDatasetGenerator gen(spec, 33);
    const std::uint32_t n_gpus = 2;
    const DlrmWorkload workload =
        DlrmWorkload::Build(gen, /*steps=*/40, n_gpus,
                            /*samples_per_gpu=*/8);

    EngineConfig config;
    config.n_gpus = n_gpus;
    config.dim = spec.embedding_dim;
    config.key_space = gen.key_space();
    config.cache_ratio = 0.05;
    config.flush_threads = 3;
    config.audit_consistency = true;

    DlrmConfig model_config;
    model_config.n_features = gen.n_features();
    model_config.dim = spec.embedding_dim;
    model_config.hidden = {16, 8};
    model_config.n_gpus = n_gpus;

    // Engine run.
    auto engine_model = std::make_unique<DlrmModel>(model_config);
    FrugalEngine engine(config);
    engine.Run(workload.trace, engine_model->BindGradFn(workload),
               engine_model->BindStepHook());

    // Oracle replay with a fresh model instance.
    auto oracle_model = std::make_unique<DlrmModel>(model_config);
    EmbeddingTableConfig tc;
    tc.key_space = config.key_space;
    tc.dim = config.dim;
    tc.init_seed = config.init_seed;
    tc.init_scale = config.init_scale;
    HostEmbeddingTable oracle_table(tc);
    auto opt = MakeOptimizer(config.optimizer, config.learning_rate,
                             config.key_space, config.dim);
    RunOracle(oracle_table, *opt, workload.trace,
              oracle_model->BindGradFn(workload),
              oracle_model->BindStepHook());

    EXPECT_TRUE(TablesBitEqual(engine.table(), oracle_table))
        << "max diff "
        << MaxAbsTableDiff(engine.table(), oracle_table);
    // Loss trajectories identical too (dense replicas in lockstep).
    ASSERT_EQ(engine_model->loss_history().size(),
              oracle_model->loss_history().size());
    for (std::size_t i = 0; i < engine_model->loss_history().size(); ++i) {
        ASSERT_DOUBLE_EQ(engine_model->loss_history()[i],
                         oracle_model->loss_history()[i])
            << "step " << i;
    }
}

class KgIntegrationTest : public ::testing::TestWithParam<KgScorerKind>
{
};

TEST_P(KgIntegrationTest, LossDecreasesAndMatchesOracle)
{
    const DatasetSpec spec = DatasetByName("FB15k").Scaled(100.0);
    KgDatasetGenerator gen(spec, /*negatives=*/4, 55);
    const std::uint32_t n_gpus = 2;
    const KgWorkload workload =
        KgWorkload::Build(gen, /*steps=*/150, n_gpus,
                          /*samples_per_gpu=*/12);

    EngineConfig config;
    config.n_gpus = n_gpus;
    config.dim = 16;
    config.key_space = gen.key_space();
    config.cache_ratio = 0.05;
    config.flush_threads = 2;
    // TransE's squared-L2 objective is quadratic in the error and blows
    // up under large steps; the bilinear scorers produce tiny gradients
    // (products of small embeddings) and need a larger rate.
    config.learning_rate =
        GetParam() == KgScorerKind::kTransE ? 0.02f : 0.5f;
    config.audit_consistency = true;
    config.init_scale = 0.5f;  // KG models need non-degenerate init

    KgModelConfig model_config;
    model_config.kind = GetParam();
    model_config.dim = 16;
    model_config.n_gpus = n_gpus;

    KgModel engine_model(model_config);
    FrugalEngine engine(config);
    const RunReport report =
        engine.Run(workload.trace, engine_model.BindGradFn(workload),
                   engine_model.BindStepHook());
    EXPECT_EQ(report.audit_violations, 0u);

    // Compare the untrained start against the trained tail; per-step
    // noise makes adjacent-window comparisons flaky.
    const double first = engine_model.MeanLossOverFirst(3);
    const double late = engine_model.MeanLossOverLast(15);
    EXPECT_LT(late, 0.98 * first) << KgScorerName(GetParam());

    // Oracle equality.
    KgModel oracle_model(model_config);
    EmbeddingTableConfig tc;
    tc.key_space = config.key_space;
    tc.dim = config.dim;
    tc.init_seed = config.init_seed;
    tc.init_scale = config.init_scale;
    HostEmbeddingTable oracle_table(tc);
    auto opt = MakeOptimizer(config.optimizer, config.learning_rate,
                             config.key_space, config.dim);
    RunOracle(oracle_table, *opt, workload.trace,
              oracle_model.BindGradFn(workload),
              oracle_model.BindStepHook());
    EXPECT_TRUE(TablesBitEqual(engine.table(), oracle_table))
        << KgScorerName(GetParam()) << " max diff "
        << MaxAbsTableDiff(engine.table(), oracle_table);
}

INSTANTIATE_TEST_SUITE_P(AllScorers, KgIntegrationTest,
                         ::testing::Values(KgScorerKind::kTransE,
                                           KgScorerKind::kDistMult,
                                           KgScorerKind::kComplEx,
                                           KgScorerKind::kSimplE),
                         [](const auto &info) {
                             return KgScorerName(info.param);
                         });

TEST(KgIntegrationTest2, CachedBaselineAlsoMatchesOracle)
{
    const DatasetSpec spec = DatasetByName("FB15k").Scaled(50.0);
    KgDatasetGenerator gen(spec, 4, 99);
    const KgWorkload workload = KgWorkload::Build(gen, 30, 2, 6);

    EngineConfig config;
    config.n_gpus = 2;
    config.dim = 8;
    config.key_space = gen.key_space();
    config.cache_ratio = 0.05;
    config.init_scale = 0.3f;

    KgModelConfig model_config;
    model_config.kind = KgScorerKind::kTransE;
    model_config.dim = 8;
    model_config.n_gpus = 2;

    KgModel engine_model(model_config);
    CachedEngine engine(config);
    engine.Run(workload.trace, engine_model.BindGradFn(workload),
               engine_model.BindStepHook());

    KgModel oracle_model(model_config);
    EmbeddingTableConfig tc;
    tc.key_space = config.key_space;
    tc.dim = config.dim;
    tc.init_seed = config.init_seed;
    tc.init_scale = config.init_scale;
    HostEmbeddingTable oracle_table(tc);
    auto opt = MakeOptimizer(config.optimizer, config.learning_rate,
                             config.key_space, config.dim);
    RunOracle(oracle_table, *opt, workload.trace,
              oracle_model.BindGradFn(workload),
              oracle_model.BindStepHook());
    EXPECT_TRUE(TablesBitEqual(engine.table(), oracle_table));
}

}  // namespace
}  // namespace frugal
